//! Typed I/O errors carrying file-path context.
//!
//! A bare `io::Error` ("No space left on device") from somewhere inside
//! a thousand-cell campaign is useless; the same error naming the
//! operation and the path ("cannot write shard output
//! /scratch/worker-3.shard.json: No space left on device") is a
//! one-line fix. Harness I/O paths that surface to users return
//! [`FileError`] so the binaries can print exactly that line and exit,
//! instead of panicking with a backtrace.

use std::fmt;
use std::path::{Path, PathBuf};

/// An I/O operation that failed on a specific file.
#[derive(Debug)]
pub struct FileError {
    /// What was being attempted, as a verb phrase ("write", "read",
    /// "create directory for").
    pub op: &'static str,
    /// The file (or directory) the operation targeted.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl FileError {
    /// Builds an error for `op` failing on `path`.
    pub fn new(op: &'static str, path: impl Into<PathBuf>, source: std::io::Error) -> FileError {
        FileError {
            op,
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for FileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot {} {}: {}",
            self.op,
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for FileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Extension attaching `(op, path)` context to `io::Result`s in one
/// call: `fs::write(&path, text).file_ctx("write", &path)?`.
pub trait IoContext<T> {
    /// Maps the error side into a [`FileError`] naming `op` and `path`.
    fn file_ctx(self, op: &'static str, path: &Path) -> Result<T, FileError>;
}

impl<T> IoContext<T> for std::io::Result<T> {
    fn file_ctx(self, op: &'static str, path: &Path) -> Result<T, FileError> {
        self.map_err(|e| FileError::new(op, path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_operation_and_path() {
        let e = FileError::new("write", "/tmp/out.json", std::io::Error::other("disk full"));
        let msg = e.to_string();
        assert!(msg.contains("cannot write /tmp/out.json"), "{msg}");
        assert!(msg.contains("disk full"), "{msg}");
    }

    #[test]
    fn context_extension_wraps_io_results() {
        let path = Path::new("/nonexistent/dir/file.txt");
        let err = std::fs::read_to_string(path)
            .file_ctx("read", path)
            .unwrap_err();
        assert!(err.to_string().contains("/nonexistent/dir/file.txt"));
    }
}
