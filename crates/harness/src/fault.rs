//! Deterministic, environment-triggered fault injection.
//!
//! Crash recovery that is only exercised by real crashes is recovery
//! that rots. This module lets the test suite and CI *inject* the
//! failures the orchestrator must survive — a worker aborting after K
//! completed cells, a journal append torn mid-line, a shard-output file
//! corrupted on disk, a specific cell that panics every time it runs —
//! at exact, reproducible points inside the worker code paths.
//!
//! Faults are armed per process via two environment variables:
//!
//! * `UNISON_FAULT=<spec>` — which fault to inject (see [`FaultSpec`]):
//!   `crash-after-cells:K`, `torn-journal[:K]`, `corrupt-shard-output`,
//!   or `panic-on-cell:<16-hex-key>`.
//! * `UNISON_FAULT_ONCE=<path>` — optional marker file making the fault
//!   fire **exactly once fleet-wide**: the first process to atomically
//!   create the marker (`O_CREAT|O_EXCL`) fires; every later incarnation
//!   (including the restarted worker resuming the journal) sees the
//!   marker and runs clean. Without a marker the fault fires in every
//!   incarnation that reaches its trigger point — which is how
//!   `panic-on-cell` produces the repeat-offender signature the
//!   orchestrator quarantines on.
//!
//! The environment is read once per process ([`std::sync::OnceLock`]);
//! a process with no `UNISON_FAULT` pays one atomic load per hook call.
//! Crash-style faults ([`die`]) use [`std::process::abort`], not
//! `panic!`, so no destructor, unwind handler, or buffered writer gets a
//! chance to tidy up — exactly like a SIGKILL or a power cut, which is
//! the failure the journal's torn-tail recovery exists for.

use std::fs::OpenOptions;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable selecting the fault to inject ([`FaultSpec`]).
pub const FAULT_ENV: &str = "UNISON_FAULT";

/// Environment variable naming the exactly-once marker file (optional).
pub const FAULT_ONCE_ENV: &str = "UNISON_FAULT_ONCE";

/// One injectable fault, parsed from the `UNISON_FAULT` spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// `crash-after-cells:K` — abort the process immediately after the
    /// K-th cell completion is journaled (1-based). The K completed
    /// cells are durable; everything else is lost, exactly as a crash
    /// between checkpoints would lose it.
    CrashAfterCells(u64),
    /// `torn-journal[:K]` — on the K-th journal append (1-based,
    /// default 1), write only half the entry line with no newline, flush
    /// it, and abort: the torn tail a mid-write kill leaves behind.
    TornJournal(u64),
    /// `corrupt-shard-output` — truncate and garbage the serialized
    /// shard-output bytes before they are written, then let the worker
    /// exit *successfully*: the silent-corruption case the supervisor's
    /// output verification must catch.
    CorruptShardOutput,
    /// `panic-on-cell:KEY` — panic (a real unwind, relabeled by the
    /// worker pool with the cell identity) whenever the cell with this
    /// canonical 16-hex key starts simulating. Without a marker it fires
    /// every incarnation: the deterministic repeat offender that drives
    /// the orchestrator's quarantine path.
    PanicOnCell(String),
}

impl FaultSpec {
    /// Parses the `UNISON_FAULT` spelling.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed piece: unknown fault kind,
    /// missing/zero/non-numeric count, or a cell key that is not 16 hex
    /// digits.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let (kind, arg) = match s.split_once(':') {
            Some((k, a)) => (k.trim(), Some(a.trim())),
            None => (s.trim(), None),
        };
        let count = |default: Option<u64>| -> Result<u64, String> {
            let Some(a) = arg else {
                return default.ok_or_else(|| format!("{kind} needs a count, e.g. {kind}:2"));
            };
            let n: u64 = a
                .parse()
                .map_err(|_| format!("bad count {a:?} in {kind}"))?;
            if n == 0 {
                return Err(format!(
                    "{kind} count is 1-based; use {kind}:1 for the first"
                ));
            }
            Ok(n)
        };
        match kind {
            "crash-after-cells" => Ok(FaultSpec::CrashAfterCells(count(None)?)),
            "torn-journal" => Ok(FaultSpec::TornJournal(count(Some(1))?)),
            "corrupt-shard-output" => match arg {
                None => Ok(FaultSpec::CorruptShardOutput),
                Some(a) => Err(format!("corrupt-shard-output takes no argument, got {a:?}")),
            },
            "panic-on-cell" => {
                let key = arg.ok_or("panic-on-cell needs a 16-hex cell key")?;
                if key.len() != 16 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
                    return Err(format!(
                        "panic-on-cell key must be 16 hex digits, got {key:?}"
                    ));
                }
                Ok(FaultSpec::PanicOnCell(key.to_ascii_lowercase()))
            }
            other => Err(format!(
                "unknown fault {other:?} (known: crash-after-cells:K, torn-journal[:K], \
                 corrupt-shard-output, panic-on-cell:KEY)"
            )),
        }
    }
}

/// The armed fault state of one process: the spec, the optional
/// exactly-once marker, and the trigger counters. Constructed directly
/// in unit tests; production code goes through the free functions, which
/// read the environment once.
#[derive(Debug)]
pub struct Injector {
    spec: FaultSpec,
    once_marker: Option<PathBuf>,
    cells_done: AtomicU64,
    appends: AtomicU64,
}

impl Injector {
    /// Builds an injector for `spec`, firing at most once fleet-wide
    /// when `once_marker` is set (see [`FAULT_ONCE_ENV`]).
    pub fn new(spec: FaultSpec, once_marker: Option<PathBuf>) -> Injector {
        Injector {
            spec,
            once_marker,
            cells_done: AtomicU64::new(0),
            appends: AtomicU64::new(0),
        }
    }

    /// Claims the right to fire. Without a marker, always true. With
    /// one, true only for the single process (fleet-wide, across
    /// restarts) that atomically creates the marker file first.
    fn arm(&self) -> bool {
        match &self.once_marker {
            None => true,
            Some(marker) => OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(marker)
                .is_ok(),
        }
    }

    /// [`FaultSpec::CrashAfterCells`] trigger: counts a journaled cell
    /// completion and returns true when the process should abort now.
    pub fn fire_cell_completed(&self) -> bool {
        let FaultSpec::CrashAfterCells(k) = self.spec else {
            return false;
        };
        self.cells_done.fetch_add(1, Ordering::SeqCst) + 1 == k && self.arm()
    }

    /// [`FaultSpec::TornJournal`] trigger: counts a journal append and,
    /// when it is the fatal one, returns the torn prefix (half the
    /// line, no newline) to flush before aborting.
    pub fn fire_torn_append(&self, line: &str) -> Option<String> {
        let FaultSpec::TornJournal(k) = self.spec else {
            return None;
        };
        if self.appends.fetch_add(1, Ordering::SeqCst) + 1 == k && self.arm() {
            return Some(line[..line.len() / 2].to_string());
        }
        None
    }

    /// [`FaultSpec::CorruptShardOutput`] trigger: mangles `bytes` in
    /// place (truncate + garbage tail) and returns whether it did.
    pub fn fire_corrupt_output(&self, bytes: &mut Vec<u8>) -> bool {
        if self.spec != FaultSpec::CorruptShardOutput || !self.arm() {
            return false;
        }
        bytes.truncate(bytes.len() / 2);
        bytes.extend_from_slice(b"\n<injected corruption>\n");
        true
    }

    /// [`FaultSpec::PanicOnCell`] trigger: true when the cell with
    /// canonical key `key_hex` must panic on start.
    pub fn fire_poison_cell(&self, key_hex: &str) -> bool {
        let FaultSpec::PanicOnCell(poison) = &self.spec else {
            return false;
        };
        poison == key_hex && self.arm()
    }
}

/// The process-wide injector, armed from the environment on first use.
/// `None` when `UNISON_FAULT` is unset, empty, or malformed (malformed
/// specs are loudly ignored: a typo'd test knob must never take a real
/// campaign down).
fn injector() -> Option<&'static Injector> {
    static INJECTOR: OnceLock<Option<Injector>> = OnceLock::new();
    INJECTOR
        .get_or_init(|| {
            let raw = std::env::var(FAULT_ENV).ok()?;
            let raw = raw.trim();
            if raw.is_empty() {
                return None;
            }
            match FaultSpec::parse(raw) {
                Ok(spec) => {
                    let marker = std::env::var(FAULT_ONCE_ENV).ok().map(PathBuf::from);
                    Some(Injector::new(spec, marker))
                }
                Err(e) => {
                    eprintln!("[fault] ignoring {FAULT_ENV}={raw:?}: {e}");
                    None
                }
            }
        })
        .as_ref()
}

/// Aborts the process after an unmissable stderr marker — the hard-crash
/// primitive every firing fault funnels through. Public so the harness
/// code paths that must die mid-operation (e.g. the torn-journal append)
/// can share the marker format the supervisor greps for.
pub fn die(what: &str) -> ! {
    eprintln!("[fault] {what}; aborting process");
    std::process::abort();
}

/// Hook: a cell completion was journaled (called by the campaign's
/// completion observer, *after* the journal append, so the K durable
/// cells really are durable). Fires [`FaultSpec::CrashAfterCells`].
pub fn cell_completed(key_hex: &str) {
    if let Some(inj) = injector() {
        if inj.fire_cell_completed() {
            die(&format!(
                "crash-after-cells firing after cell key={key_hex}"
            ));
        }
    }
}

/// Hook: a cell is about to start simulating (called from the campaign's
/// run paths on the worker thread). Fires [`FaultSpec::PanicOnCell`] as
/// a real panic, which the worker pool relabels with the cell identity.
///
/// # Panics
///
/// Panics (by design) when the armed fault poisons this cell.
pub fn check_cell_start(key_hex: &str) {
    if let Some(inj) = injector() {
        if inj.fire_poison_cell(key_hex) {
            panic!("injected fault: poison cell key={key_hex}");
        }
    }
}

/// Hook: `Journal::append` is about to write `line`. When the armed
/// [`FaultSpec::TornJournal`] fires on this append, returns the torn
/// prefix the journal must flush before calling [`die`].
pub fn torn_journal_prefix(line: &str) -> Option<String> {
    injector()?.fire_torn_append(line)
}

/// Hook: serialized shard-output bytes are about to be written. Fires
/// [`FaultSpec::CorruptShardOutput`], mangling `bytes` in place; returns
/// whether it did (the writer logs it and then writes the garbage,
/// exiting successfully — the supervisor must catch this on its own).
pub fn corrupt_shard_output(bytes: &mut Vec<u8>) -> bool {
    match injector() {
        Some(inj) => {
            let fired = inj.fire_corrupt_output(bytes);
            if fired {
                eprintln!("[fault] corrupt-shard-output mangled the shard output bytes");
            }
            fired
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_reject() {
        assert_eq!(
            FaultSpec::parse("crash-after-cells:3").unwrap(),
            FaultSpec::CrashAfterCells(3)
        );
        assert_eq!(
            FaultSpec::parse("torn-journal").unwrap(),
            FaultSpec::TornJournal(1)
        );
        assert_eq!(
            FaultSpec::parse("torn-journal:5").unwrap(),
            FaultSpec::TornJournal(5)
        );
        assert_eq!(
            FaultSpec::parse("corrupt-shard-output").unwrap(),
            FaultSpec::CorruptShardOutput
        );
        assert_eq!(
            FaultSpec::parse("panic-on-cell:00DEADBEEF123456").unwrap(),
            FaultSpec::PanicOnCell("00deadbeef123456".into())
        );
        for bad in [
            "crash-after-cells",
            "crash-after-cells:0",
            "crash-after-cells:x",
            "torn-journal:0",
            "corrupt-shard-output:1",
            "panic-on-cell",
            "panic-on-cell:xyz",
            "panic-on-cell:123",
            "sigsegv",
            "",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn crash_after_cells_counts_completions() {
        let inj = Injector::new(FaultSpec::CrashAfterCells(3), None);
        assert!(!inj.fire_cell_completed());
        assert!(!inj.fire_cell_completed());
        assert!(inj.fire_cell_completed(), "fires exactly on the 3rd");
        assert!(!inj.fire_cell_completed(), "and never again");
        // Other triggers stay inert under this spec.
        assert!(inj.fire_torn_append("x").is_none());
        assert!(!inj.fire_poison_cell("0000000000000000"));
    }

    #[test]
    fn torn_append_returns_half_the_line() {
        let inj = Injector::new(FaultSpec::TornJournal(2), None);
        assert!(inj.fire_torn_append("first line").is_none());
        let line = "{\"index\":7,\"key\":\"k\"}";
        let torn = inj.fire_torn_append(line).unwrap();
        assert_eq!(torn, &line[..line.len() / 2]);
        assert!(
            serde_json::parse(&torn).is_err(),
            "torn prefix must not parse"
        );
        assert!(inj.fire_torn_append("third").is_none());
    }

    #[test]
    fn corrupt_output_mangles_bytes() {
        let inj = Injector::new(FaultSpec::CorruptShardOutput, None);
        let mut bytes = b"{\"fingerprint\": \"abc\", \"cells\": []}".to_vec();
        let original = bytes.clone();
        assert!(inj.fire_corrupt_output(&mut bytes));
        assert_ne!(bytes, original);
        assert!(serde_json::parse(std::str::from_utf8(&bytes).unwrap_or("x")).is_err());
    }

    #[test]
    fn poison_cell_matches_its_key_every_time() {
        let inj = Injector::new(FaultSpec::PanicOnCell("00deadbeef123456".into()), None);
        assert!(!inj.fire_poison_cell("ffffffffffffffff"));
        assert!(inj.fire_poison_cell("00deadbeef123456"));
        assert!(
            inj.fire_poison_cell("00deadbeef123456"),
            "no marker: a poison cell fires every incarnation"
        );
    }

    #[test]
    fn once_marker_claims_exactly_one_firing() {
        let dir = std::env::temp_dir().join(format!("unison-fault-once-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let marker = dir.join("marker");
        let a = Injector::new(
            FaultSpec::PanicOnCell("00deadbeef123456".into()),
            Some(marker.clone()),
        );
        let b = Injector::new(
            FaultSpec::PanicOnCell("00deadbeef123456".into()),
            Some(marker.clone()),
        );
        assert!(
            a.fire_poison_cell("00deadbeef123456"),
            "first claimant fires"
        );
        assert!(
            !b.fire_poison_cell("00deadbeef123456"),
            "second process (or restarted incarnation) sees the marker and runs clean"
        );
        assert!(marker.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
