//! Memoized trace artifacts shared across a campaign.
//!
//! Every cell of a grid over one `(workload, seed)` replays the same
//! record stream; regenerating it per cell multiplies the RNG/Zipf
//! synthesis cost by the number of designs × sizes. This store freezes
//! each stream **once** as a [`TraceArtifact`] and hands every requester
//! the same `Arc` — modeled on [`crate::BaselineStore`], with two
//! extensions:
//!
//! * **Monotonic growth**: different cache sizes need different trace
//!   lengths (`SimConfig::trace_plan`), and a longer freeze of the same
//!   `(spec, seed)` is a strict prefix-extension of a shorter one. The
//!   store keeps one artifact per key and regenerates it longer when a
//!   bigger request arrives, so campaigns should prefill with their
//!   maximum length first (the [`crate::Campaign`] does).
//! * **Optional disk cache**: with a directory configured, artifacts are
//!   persisted as `trace-<key>.bin` (the codec encoding, verbatim) and
//!   reloaded by later invocations — repeated campaigns skip generation
//!   entirely. Corrupted, truncated, or version-mismatched files are
//!   treated as misses and regenerated in place; the content key hashes
//!   the codec version, so a `codec::VERSION` bump automatically ignores
//!   stale files rather than misreading them.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use unison_trace::{artifact_key, TraceArtifact, WorkloadSpec};

/// Memo key: (serialized scaled workload spec, trace seed) — the same
/// full-spec keying as [`crate::BaselineStore`], so two specs sharing a
/// display name but differing in any knob get distinct artifacts.
type StoreKey = (String, u64);

/// One artifact slot. The outer mutex serializes generation per key:
/// concurrent first requests block until the one in-flight freeze
/// finishes, then share its result.
type Slot = Arc<Mutex<Option<Arc<TraceArtifact>>>>;

/// Exactly-once (per length high-water mark) store of frozen trace
/// artifacts, safe to share across the campaign worker pool.
pub struct TraceStore {
    dir: Option<PathBuf>,
    slots: Mutex<HashMap<StoreKey, Slot>>,
    generated: AtomicUsize,
    memo_hits: AtomicUsize,
    disk_hits: AtomicUsize,
}

impl TraceStore {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        TraceStore {
            dir: None,
            slots: Mutex::new(HashMap::new()),
            generated: AtomicUsize::new(0),
            memo_hits: AtomicUsize::new(0),
            disk_hits: AtomicUsize::new(0),
        }
    }

    /// Adds a disk cache directory (created on first write). Artifacts
    /// are loaded from and persisted to `dir/trace-<key>.bin`.
    pub fn with_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = Some(dir.into());
        self
    }

    /// The configured disk cache directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Returns an artifact for `(scaled_spec, seed)` holding at least
    /// `min_len` records, freezing (or growing) it on first request and
    /// serving the shared `Arc` afterwards.
    ///
    /// `scaled_spec` must be the spec the run actually generates with
    /// (i.e. `TracePlan::scaled_spec`), and `min_len` the plan's
    /// `frozen_len`; `unison_sim::run_experiment_with_source` re-derives
    /// and asserts both.
    pub fn get(&self, scaled_spec: &WorkloadSpec, seed: u64, min_len: u64) -> Arc<TraceArtifact> {
        let json = serde_json::to_string(scaled_spec).expect("workload spec serializes");
        let slot = {
            let mut map = self.slots.lock().expect("trace store map poisoned");
            Arc::clone(map.entry((json, seed)).or_default())
        };
        let mut guard = slot.lock().expect("trace store slot poisoned");
        if let Some(artifact) = guard.as_ref() {
            if artifact.len() as u64 >= min_len {
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(artifact);
            }
        }
        let key = artifact_key(scaled_spec, seed);
        if let Some(artifact) = self.load_disk(scaled_spec, key, seed, min_len) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            *guard = Some(Arc::clone(&artifact));
            return artifact;
        }
        self.generated.fetch_add(1, Ordering::Relaxed);
        let artifact = Arc::new(TraceArtifact::freeze(scaled_spec, seed, min_len));
        self.persist(&artifact);
        *guard = Some(Arc::clone(&artifact));
        artifact
    }

    /// Freezes every artifact in `tasks` in parallel on `threads`
    /// workers — the executor's trace-prefill stage. Each task should
    /// carry the maximum length any dependent cell replays (the planner
    /// guarantees this), so the per-key grow-on-demand path never
    /// regenerates mid-campaign.
    pub fn prefill(&self, tasks: &[crate::scheduler::TracePrefillTask], threads: usize) {
        crate::pool::parallel_map_observed(
            tasks,
            threads,
            |t| {
                self.get(&t.spec, t.seed, t.len);
            },
            &|t| format!("trace freeze for {} (seed {})", t.spec.name, t.seed),
            &mut |_, ()| {},
        );
    }

    /// Artifacts actually generated (including regrowth of too-short
    /// cached ones).
    pub fn generated_traces(&self) -> usize {
        self.generated.load(Ordering::Relaxed)
    }

    /// Requests served from the in-memory memo without generating.
    pub fn memo_hits(&self) -> usize {
        self.memo_hits.load(Ordering::Relaxed)
    }

    /// Requests served by loading a persisted artifact from disk.
    pub fn disk_hits(&self) -> usize {
        self.disk_hits.load(Ordering::Relaxed)
    }

    fn disk_path(&self, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("trace-{key:016x}.bin")))
    }

    /// Records regenerated live and compared against a disk-loaded
    /// artifact's prefix before trusting it. The encoded file does not
    /// embed its spec or seed (the key only names the file), so a
    /// mislabeled file — renamed, copied between cache dirs, or a key
    /// collision — would otherwise pass every structural check and
    /// silently replay the wrong workload. A 64-record spot check
    /// (microseconds) catches that with overwhelming probability.
    const PREFIX_CHECK_RECORDS: usize = 64;

    /// Attempts to load `key` from the disk cache. Anything short of a
    /// fully valid artifact covering `min_len` — missing file, bad magic,
    /// stale codec version, truncation, corrupt records, too short, or a
    /// prefix that doesn't match live generation for `(spec, seed)` — is
    /// a miss: the caller regenerates and overwrites.
    fn load_disk(
        &self,
        spec: &WorkloadSpec,
        key: u64,
        seed: u64,
        min_len: u64,
    ) -> Option<Arc<TraceArtifact>> {
        let path = self.disk_path(key)?;
        let bytes = std::fs::read(&path).ok()?;
        match TraceArtifact::from_bytes(key, seed, bytes.into()) {
            Ok(artifact) if artifact.len() as u64 >= min_len => {
                let n = Self::PREFIX_CHECK_RECORDS.min(artifact.len());
                let fresh = unison_trace::WorkloadGen::new(spec.clone(), seed).take(n);
                if artifact.replay().take(n).eq(fresh) {
                    Some(Arc::new(artifact))
                } else {
                    eprintln!(
                        "[trace-store] cache file {} does not match its (spec, seed) — \
                         mislabeled or stale content; regenerating",
                        path.display()
                    );
                    None
                }
            }
            Ok(_) => None, // shorter than needed: regenerate longer
            Err(e) => {
                eprintln!(
                    "[trace-store] ignoring unusable cache file {} ({e}); regenerating",
                    path.display()
                );
                None
            }
        }
    }

    /// Persists `artifact` to the disk cache (write-to-temp + rename, so
    /// concurrent invocations never observe partial files). Disk errors
    /// only cost the cache, never the campaign: warn and continue.
    fn persist(&self, artifact: &TraceArtifact) {
        let Some(path) = self.disk_path(artifact.key()) else {
            return;
        };
        let dir = self.dir.as_ref().expect("disk_path implies dir");
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(dir)?;
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            std::fs::write(&tmp, artifact.bytes().as_ref())?;
            std::fs::rename(&tmp, &path)
        };
        if let Err(e) = write() {
            eprintln!(
                "[trace-store] failed to persist {} ({e}); continuing without disk cache",
                path.display()
            );
        }
    }
}

impl Default for TraceStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unison_trace::codec;
    use unison_trace::workloads;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("unison-trace-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quick_spec() -> WorkloadSpec {
        workloads::web_search().scaled(64)
    }

    #[test]
    fn memoizes_and_shares_one_arc() {
        let store = TraceStore::new();
        let spec = quick_spec();
        let a = store.get(&spec, 42, 1_000);
        let b = store.get(&spec, 42, 1_000);
        assert_eq!(store.generated_traces(), 1);
        assert_eq!(store.memo_hits(), 1);
        assert!(Arc::ptr_eq(&a, &b), "hits must share the same artifact");
        // A shorter request is also a hit on the existing artifact.
        let c = store.get(&spec, 42, 10);
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn distinct_specs_and_seeds_get_distinct_artifacts() {
        let store = TraceStore::new();
        let spec = quick_spec();
        store.get(&spec, 1, 100);
        store.get(&spec, 2, 100);
        store.get(&workloads::web_search().scaled(32), 1, 100);
        assert_eq!(store.generated_traces(), 3);
    }

    #[test]
    fn grows_when_a_longer_trace_is_requested() {
        let store = TraceStore::new();
        let spec = quick_spec();
        let short = store.get(&spec, 7, 500);
        let long = store.get(&spec, 7, 2_000);
        assert_eq!(store.generated_traces(), 2, "regrowth regenerates");
        assert_eq!(long.len(), 2_000);
        // Prefix property: the grown artifact starts with the short one.
        assert_eq!(
            short.replay().collect::<Vec<_>>(),
            long.replay().take(500).collect::<Vec<_>>()
        );
        // And the store now serves the long one for any length <= 2000.
        let again = store.get(&spec, 7, 500);
        assert!(Arc::ptr_eq(&long, &again));
    }

    #[test]
    fn disk_cache_round_trips_across_store_instances() {
        let dir = scratch_dir("roundtrip");
        let spec = quick_spec();

        let first = TraceStore::new().with_dir(&dir);
        let a = first.get(&spec, 42, 1_000);
        assert_eq!(first.generated_traces(), 1);
        assert_eq!(first.disk_hits(), 0);

        // A fresh store (a new campaign invocation) loads from disk.
        let second = TraceStore::new().with_dir(&dir);
        let b = second.get(&spec, 42, 1_000);
        assert_eq!(second.generated_traces(), 0, "must load, not regenerate");
        assert_eq!(second.disk_hits(), 1);
        assert_eq!(
            a.replay().collect::<Vec<_>>(),
            b.replay().collect::<Vec<_>>()
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_disk_artifacts_are_regenerated_not_fatal() {
        let dir = scratch_dir("corrupt");
        let spec = quick_spec();
        let key = artifact_key(&spec, 42);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-{key:016x}.bin"));

        for corruption in [
            b"garbage that is not a trace".to_vec(),
            {
                // Valid header, stale codec version.
                let good = TraceArtifact::freeze(&spec, 42, 10);
                let mut v = good.bytes().to_vec();
                v[8] = codec::VERSION as u8 + 1;
                v
            },
            {
                // Truncated mid-record.
                let good = TraceArtifact::freeze(&spec, 42, 10);
                let v = good.bytes().to_vec();
                v[..v.len() - 7].to_vec()
            },
        ] {
            std::fs::write(&path, &corruption).unwrap();
            let store = TraceStore::new().with_dir(&dir);
            let artifact = store.get(&spec, 42, 200);
            assert_eq!(store.generated_traces(), 1, "corrupt file must be a miss");
            assert_eq!(artifact.len(), 200);
            // The bad file was overwritten with a good one.
            let reread = TraceStore::new().with_dir(&dir);
            reread.get(&spec, 42, 200);
            assert_eq!(reread.disk_hits(), 1, "regenerated artifact persisted");
        }

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mislabeled_disk_artifact_is_rejected_by_prefix_check() {
        let dir = scratch_dir("mislabel");
        let spec = quick_spec();
        let other = workloads::tpch().scaled(64);

        // Persist the *other* workload's artifact, then rename it to this
        // spec's key — structurally valid, wrong content.
        let wrong = TraceArtifact::freeze(&other, 42, 500);
        std::fs::create_dir_all(&dir).unwrap();
        let key = artifact_key(&spec, 42);
        std::fs::write(
            dir.join(format!("trace-{key:016x}.bin")),
            wrong.bytes().as_ref(),
        )
        .unwrap();

        let store = TraceStore::new().with_dir(&dir);
        let artifact = store.get(&spec, 42, 500);
        assert_eq!(
            store.generated_traces(),
            1,
            "mislabeled file must be a miss, not silently replayed"
        );
        assert_eq!(store.disk_hits(), 0);
        // And the regenerated artifact really is this spec's stream.
        let fresh: Vec<_> = unison_trace::WorkloadGen::new(spec, 42).take(500).collect();
        assert_eq!(artifact.replay().collect::<Vec<_>>(), fresh);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn too_short_disk_artifact_is_grown_and_rewritten() {
        let dir = scratch_dir("grow");
        let spec = quick_spec();
        TraceStore::new().with_dir(&dir).get(&spec, 5, 100);

        let store = TraceStore::new().with_dir(&dir);
        let grown = store.get(&spec, 5, 1_000);
        assert_eq!(store.generated_traces(), 1, "short file is a miss");
        assert_eq!(grown.len(), 1_000);

        let reread = TraceStore::new().with_dir(&dir);
        assert_eq!(reread.get(&spec, 5, 1_000).len(), 1_000);
        assert_eq!(reread.disk_hits(), 1);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
