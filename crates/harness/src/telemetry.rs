//! Campaign telemetry: injectable clocks, phase timers, and counters.
//!
//! Everything the harness knows about *how long* work took flows through
//! this module, so timing is measured exactly one way everywhere and is
//! deterministic under test:
//!
//! * [`Clock`] — a monotonic nanosecond source. Production code uses
//!   [`MonotonicClock`] (a `std::time::Instant` anchor); tests inject a
//!   [`MockClock`] and advance it by hand, so timer assertions are exact
//!   instead of sleep-and-hope.
//! * [`Telemetry`] — per-phase wall-time accumulators for the three
//!   campaign stages ([`Phase::TracePrefill`], [`Phase::Baseline`],
//!   [`Phase::Cells`]), shared across the worker pool.
//! * [`Counter`] — a relaxed atomic event counter for throughput-style
//!   accounting (cells completed, progress emissions).
//! * [`CampaignTiming`] — the serializable per-phase summary that rides
//!   on `ShardOutput`/`CampaignResult` and lands in the JSON sink.
//!
//! Timing is **observability, not identity**: nothing here feeds the
//! plan fingerprint, cell keys, or simulation results. Byte-identity
//! comparisons (shard merge, journal resume, CI) canonicalize timing
//! away first — see `CampaignResult::canonicalized`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// A monotonic nanosecond clock. Implementations must never go
/// backwards between calls on the same instance.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since this clock's arbitrary (but fixed) epoch.
    fn now_ns(&self) -> u64;
}

/// The production clock: nanoseconds since the instant the clock was
/// created, via `std::time::Instant` (monotonic by contract).
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    anchor: Instant,
}

impl MonotonicClock {
    /// Creates a clock anchored at "now".
    pub fn new() -> Self {
        MonotonicClock {
            anchor: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds covers ~584 years of campaign; the cast is safe
        // for any real run.
        self.anchor.elapsed().as_nanos() as u64
    }
}

/// A hand-advanced clock for deterministic tests: `now_ns` returns
/// whatever the test last [`MockClock::advance`]d or [`MockClock::set`]
/// it to. Shared freely across threads (atomic).
#[derive(Debug, Default)]
pub struct MockClock {
    ns: AtomicU64,
}

impl MockClock {
    /// Creates a mock clock starting at `start_ns`.
    pub fn new(start_ns: u64) -> Self {
        MockClock {
            ns: AtomicU64::new(start_ns),
        }
    }

    /// Moves the clock forward by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.ns.fetch_add(delta_ns, Ordering::Relaxed);
    }

    /// Sets the clock to an absolute reading.
    ///
    /// # Panics
    ///
    /// Panics when `ns` would move the clock backwards — a mock that
    /// violates monotonicity would vacuously pass the very tests it
    /// exists to make exact.
    pub fn set(&self, ns: u64) {
        let prev = self.ns.swap(ns, Ordering::Relaxed);
        assert!(
            ns >= prev,
            "MockClock::set({ns}) would run time backwards from {prev}"
        );
    }
}

impl Clock for MockClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

/// A relaxed atomic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The campaign stages [`Telemetry`] accounts separately. Stage wall
/// times are what the ROADMAP's adaptive-sharding work consumes: cells
/// record their own per-cell `wall_ns`, and the phase totals bound how
/// much of a campaign the dependency stages (not the cells) cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Freezing shared trace artifacts before cells run.
    TracePrefill,
    /// Simulating memoized NoCache baselines before cells run.
    Baseline,
    /// Executing the planned cells on the worker pool.
    Cells,
}

impl Phase {
    /// Every phase, in campaign execution order.
    pub const ALL: [Phase; 3] = [Phase::TracePrefill, Phase::Baseline, Phase::Cells];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::TracePrefill => "trace-prefill",
            Phase::Baseline => "baseline",
            Phase::Cells => "cells",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::TracePrefill => 0,
            Phase::Baseline => 1,
            Phase::Cells => 2,
        }
    }
}

/// Shared campaign telemetry: one injectable clock plus per-phase
/// accumulated wall time. Cheap to clone handles of (`Arc` the clock),
/// safe to read from any thread.
#[derive(Debug)]
pub struct Telemetry {
    clock: Arc<dyn Clock>,
    phase_ns: [AtomicU64; 3],
}

impl Telemetry {
    /// Creates telemetry reading `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Telemetry {
            clock,
            phase_ns: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        }
    }

    /// The clock this telemetry samples.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Current clock reading.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Runs `f`, charging its wall time to `phase`.
    pub fn time_phase<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let (value, elapsed) = self.time(f);
        self.phase_ns[phase.index()].fetch_add(elapsed, Ordering::Relaxed);
        value
    }

    /// Runs `f` and returns its result alongside its wall time in
    /// nanoseconds (charged to no phase).
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> (T, u64) {
        let start = self.clock.now_ns();
        let value = f();
        (value, self.clock.now_ns().saturating_sub(start))
    }

    /// Accumulated wall time of `phase`.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.phase_ns[phase.index()].load(Ordering::Relaxed)
    }

    /// Sum of all phase times.
    pub fn total_ns(&self) -> u64 {
        Phase::ALL.iter().map(|&p| self.phase_ns(p)).sum()
    }

    /// Snapshot of the accumulated phase times as the serializable
    /// summary record.
    pub fn timing(&self) -> CampaignTiming {
        CampaignTiming {
            trace_prefill_ns: self.phase_ns(Phase::TracePrefill),
            baseline_ns: self.phase_ns(Phase::Baseline),
            cells_ns: self.phase_ns(Phase::Cells),
            total_ns: self.total_ns(),
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(Arc::new(MonotonicClock::new()))
    }
}

/// Per-phase wall-time summary of one campaign (or one shard of one):
/// the timing block `ShardOutput` and `CampaignResult` carry and the
/// JSON sink renders. Merging shards sums the blocks — the result is
/// aggregate compute time across workers, not elapsed wall time on any
/// one machine.
///
/// All zeros means "not measured" (e.g. a hand-built fixture) and is
/// also the canonical form byte-identity comparisons reduce to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CampaignTiming {
    /// Wall time freezing shared trace artifacts.
    pub trace_prefill_ns: u64,
    /// Wall time prefilling memoized NoCache baselines.
    pub baseline_ns: u64,
    /// Wall time executing cells (the pool's elapsed time, not the sum
    /// of per-cell times — with N workers this is roughly that sum / N).
    pub cells_ns: u64,
    /// Sum of the three phases.
    pub total_ns: u64,
}

impl CampaignTiming {
    /// Accumulates another timing block (shard merge).
    pub fn absorb(&mut self, other: &CampaignTiming) {
        self.trace_prefill_ns += other.trace_prefill_ns;
        self.baseline_ns += other.baseline_ns;
        self.cells_ns += other.cells_ns;
        self.total_ns += other.total_ns;
    }

    /// True when nothing was measured — the canonical/fixture form.
    pub fn is_zero(&self) -> bool {
        *self == CampaignTiming::default()
    }
}

/// Renders nanoseconds human-readably (`412ns`, `3.2µs`, `18.4ms`,
/// `7.25s`, `3m12s`) for progress lines and footers.
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        1_000_000_000..=59_999_999_999 => format!("{:.2}s", ns as f64 / 1e9),
        _ => {
            let secs = ns / 1_000_000_000;
            format!("{}m{:02}s", secs / 60, secs % 60)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_advances_and_rejects_time_travel() {
        let c = MockClock::new(100);
        assert_eq!(c.now_ns(), 100);
        c.advance(50);
        assert_eq!(c.now_ns(), 150);
        c.set(150); // equal is fine
        let err = std::panic::catch_unwind(|| c.set(10));
        assert!(err.is_err(), "moving a mock clock backwards must panic");
    }

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let mut prev = c.now_ns();
        for _ in 0..1000 {
            let now = c.now_ns();
            assert!(now >= prev, "monotonic clock went backwards");
            prev = now;
        }
    }

    #[test]
    fn timers_are_exact_under_a_mock_clock() {
        let clock = Arc::new(MockClock::new(0));
        let t = Telemetry::new(Arc::clone(&clock) as Arc<dyn Clock>);
        let (v, ns) = t.time(|| {
            clock.advance(250);
            7
        });
        assert_eq!((v, ns), (7, 250));
        t.time_phase(Phase::TracePrefill, || clock.advance(1_000));
        t.time_phase(Phase::Baseline, || clock.advance(2_000));
        t.time_phase(Phase::Cells, || clock.advance(4_000));
        t.time_phase(Phase::Cells, || clock.advance(8_000));
        assert_eq!(t.phase_ns(Phase::TracePrefill), 1_000);
        assert_eq!(t.phase_ns(Phase::Baseline), 2_000);
        assert_eq!(t.phase_ns(Phase::Cells), 12_000);
    }

    #[test]
    fn phase_sums_equal_total() {
        let clock = Arc::new(MockClock::new(5));
        let t = Telemetry::new(Arc::clone(&clock) as Arc<dyn Clock>);
        for (i, &p) in Phase::ALL.iter().enumerate() {
            t.time_phase(p, || clock.advance(100 * (i as u64 + 1)));
        }
        assert_eq!(t.total_ns(), 100 + 200 + 300);
        let timing = t.timing();
        assert_eq!(
            timing.trace_prefill_ns + timing.baseline_ns + timing.cells_ns,
            timing.total_ns,
            "per-phase sums must equal the recorded total"
        );
        assert!(!timing.is_zero());
    }

    #[test]
    fn timing_absorb_sums_fields() {
        let mut a = CampaignTiming {
            trace_prefill_ns: 1,
            baseline_ns: 2,
            cells_ns: 3,
            total_ns: 6,
        };
        a.absorb(&a.clone());
        assert_eq!(
            a,
            CampaignTiming {
                trace_prefill_ns: 2,
                baseline_ns: 4,
                cells_ns: 6,
                total_ns: 12,
            }
        );
        assert!(CampaignTiming::default().is_zero());
    }

    #[test]
    fn timing_serializes_round_trip() {
        let t = CampaignTiming {
            trace_prefill_ns: 10,
            baseline_ns: 20,
            cells_ns: 30,
            total_ns: 60,
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: CampaignTiming = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn fmt_ns_picks_sensible_units() {
        assert_eq!(fmt_ns(412), "412ns");
        assert_eq!(fmt_ns(3_200), "3.2µs");
        assert_eq!(fmt_ns(18_400_000), "18.4ms");
        assert_eq!(fmt_ns(7_250_000_000), "7.25s");
        assert_eq!(fmt_ns(192_000_000_000), "3m12s");
    }

    #[test]
    fn mock_clock_is_shareable_across_threads() {
        let clock = Arc::new(MockClock::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&clock);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                });
            }
        });
        assert_eq!(clock.now_ns(), 4000);
    }
}
