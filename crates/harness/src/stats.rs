//! Scalar reductions shared by the figure/table renderers.

/// Geometric mean of `vals`.
///
/// Returns `None` for an empty slice (there is no identity element worth
/// printing) and `Some(v)` for a single element. Non-positive inputs
/// would make the log-domain mean undefined; they return `None` rather
/// than NaN so table code can render a placeholder.
pub fn geomean(vals: &[f64]) -> Option<f64> {
    if vals.is_empty() || vals.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = vals.iter().map(|v| v.ln()).sum();
    Some((log_sum / vals.len() as f64).exp())
}

/// Arithmetic mean of `vals` (`None` for an empty slice).
pub fn mean(vals: &[f64]) -> Option<f64> {
    if vals.is_empty() {
        return None;
    }
    Some(vals.iter().sum::<f64>() / vals.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_empty_is_none() {
        assert_eq!(geomean(&[]), None);
    }

    #[test]
    fn geomean_of_single_element_is_that_element() {
        let g = geomean(&[1.37]).unwrap();
        assert!((g - 1.37).abs() < 1e-12, "got {g}");
    }

    #[test]
    fn geomean_matches_definition() {
        let g = geomean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12, "got {g}");
        let g3 = geomean(&[1.0, 2.0, 4.0]).unwrap();
        assert!((g3 - 2.0).abs() < 1e-12, "got {g3}");
    }

    #[test]
    fn geomean_rejects_non_positive_and_non_finite() {
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[1.0, -2.0]), None);
        assert_eq!(geomean(&[1.0, f64::NAN]), None);
        assert_eq!(geomean(&[1.0, f64::INFINITY]), None);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[3.0]), Some(3.0));
        assert_eq!(mean(&[1.0, 3.0]), Some(2.0));
    }
}
