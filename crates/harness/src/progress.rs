//! Live campaign progress reporting.
//!
//! The worker pool observes completions on the caller thread; this
//! module turns that stream into rate-limited progress lines — either
//! human-readable (`sweep --progress[=SECS]`) or JSONL for machine
//! consumption (`--progress-json`). The reporter is pure state + string
//! formatting: callers feed it clock readings and completion events and
//! decide what to do with the returned lines, so every emission path is
//! unit-testable with a [`MockClock`](crate::telemetry::MockClock)
//! without capturing stderr.

use serde::Serialize;

use crate::telemetry::fmt_ns;

/// What kind of progress stream a campaign emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProgressMode {
    /// No progress output.
    #[default]
    Off,
    /// One stderr line per completed cell (the historical
    /// `Campaign::progress(true)` behaviour).
    PerCell,
    /// Rate-limited human-readable status lines: done/total, mean cell
    /// time, ETA, cache hit rates, per-design throughput.
    Human,
    /// Rate-limited JSONL [`ProgressEvent`] records.
    Json,
}

/// Progress configuration: the mode plus the minimum interval between
/// emissions for the rate-limited modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressConfig {
    /// The stream kind.
    pub mode: ProgressMode,
    /// Minimum nanoseconds between emissions ([`ProgressMode::Human`] /
    /// [`ProgressMode::Json`]; ignored by the per-cell mode). The final
    /// completion always emits regardless.
    pub interval_ns: u64,
}

impl ProgressConfig {
    /// Default interval between rate-limited emissions: 2 s.
    pub const DEFAULT_INTERVAL_NS: u64 = 2_000_000_000;

    /// No progress output.
    pub fn off() -> Self {
        ProgressConfig {
            mode: ProgressMode::Off,
            interval_ns: Self::DEFAULT_INTERVAL_NS,
        }
    }

    /// Per-cell lines (legacy `progress(true)`).
    pub fn per_cell() -> Self {
        ProgressConfig {
            mode: ProgressMode::PerCell,
            interval_ns: 0,
        }
    }

    /// Human-readable status lines every `interval_secs` (or the default
    /// interval when `None`).
    pub fn human(interval_secs: Option<u64>) -> Self {
        ProgressConfig {
            mode: ProgressMode::Human,
            interval_ns: interval_secs
                .map(|s| s.saturating_mul(1_000_000_000))
                .unwrap_or(Self::DEFAULT_INTERVAL_NS),
        }
    }

    /// JSONL status records every `interval_secs` (or the default
    /// interval when `None`).
    pub fn json(interval_secs: Option<u64>) -> Self {
        ProgressConfig {
            mode: ProgressMode::Json,
            interval_ns: interval_secs
                .map(|s| s.saturating_mul(1_000_000_000))
                .unwrap_or(Self::DEFAULT_INTERVAL_NS),
        }
    }

    /// True for any mode that emits something.
    pub fn enabled(&self) -> bool {
        self.mode != ProgressMode::Off
    }

    /// True when human-oriented phase banners (journal restore, trace
    /// freeze, baseline prefill notices) belong on stderr: any enabled
    /// mode except [`ProgressMode::Json`], whose stderr stream must stay
    /// machine-parseable line-by-line.
    pub fn banners(&self) -> bool {
        self.enabled() && self.mode != ProgressMode::Json
    }
}

impl Default for ProgressConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// A point-in-time snapshot of the campaign's dependency-cache counters,
/// sampled by the campaign from its [`BaselineStore`](crate::BaselineStore)
/// and [`TraceStore`](crate::TraceStore) at each completion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// NoCache baselines simulated so far.
    pub baseline_runs: usize,
    /// Baseline requests served from the memo cache.
    pub baseline_hits: usize,
    /// Trace artifacts generated so far.
    pub trace_generated: usize,
    /// Trace requests served from the in-memory memo.
    pub trace_memo_hits: usize,
    /// Trace requests served from the on-disk cache.
    pub trace_disk_hits: usize,
}

impl CounterSnapshot {
    /// Memo-cache hit rate of baseline requests, `None` before any
    /// request happened.
    pub fn baseline_hit_rate(&self) -> Option<f64> {
        rate(self.baseline_hits, self.baseline_runs + self.baseline_hits)
    }

    /// Cache (memo + disk) hit rate of trace requests, `None` before any
    /// request happened.
    pub fn trace_hit_rate(&self) -> Option<f64> {
        let hits = self.trace_memo_hits + self.trace_disk_hits;
        rate(hits, self.trace_generated + hits)
    }
}

fn rate(hits: usize, total: usize) -> Option<f64> {
    (total > 0).then(|| hits as f64 / total as f64)
}

/// One machine-readable progress record ([`ProgressMode::Json`]), emitted
/// as a single JSONL line.
#[derive(Debug, Clone, Serialize)]
pub struct ProgressEvent {
    /// Cells completed this run (excluding restored ones).
    pub done: usize,
    /// Cells this run will execute (excluding restored ones).
    pub total: usize,
    /// Cells restored from a resume journal.
    pub resumed: usize,
    /// Wall time since the reporter started, ns.
    pub elapsed_ns: u64,
    /// Running mean per-cell wall time, ns (0 before the first cell).
    pub mean_cell_ns: u64,
    /// Estimated wall time remaining, ns (0 when done or unknown).
    pub eta_ns: u64,
    /// Overall completion throughput, cells per second of elapsed time.
    pub cells_per_sec: f64,
    /// Baseline memo-cache hit rate (0 before any baseline request).
    pub baseline_hit_rate: f64,
    /// Trace-cache (memo + disk) hit rate (0 before any trace request).
    pub trace_hit_rate: f64,
    /// Per-design completion counts and mean cell times, sorted by
    /// design name.
    pub designs: Vec<DesignRate>,
}

/// Per-design throughput inside a [`ProgressEvent`].
#[derive(Debug, Clone, Serialize)]
pub struct DesignRate {
    /// Design display name.
    pub design: String,
    /// Cells of this design completed so far.
    pub done: usize,
    /// Mean wall time per cell of this design, ns.
    pub mean_cell_ns: u64,
}

/// Turns completion events into progress lines. Pure state: the caller
/// supplies clock readings, so emission is deterministic under a mock
/// clock.
#[derive(Debug)]
pub struct ProgressReporter {
    cfg: ProgressConfig,
    threads: usize,
    total: usize,
    resumed: usize,
    start_ns: u64,
    last_emit_ns: Option<u64>,
    done: usize,
    cell_ns_sum: u64,
    // Predicted cost of all cells to run (Some only when the campaign
    // loaded a cost model) and of the cells completed so far — the ETA
    // weights remaining work by cost instead of assuming every cell
    // costs the running mean.
    predicted_total_ns: Option<u64>,
    predicted_done_ns: u64,
    // (design, completions, summed wall ns), sorted by design name.
    designs: Vec<(String, usize, u64)>,
}

impl ProgressReporter {
    /// Creates a reporter for a run executing `total` cells on
    /// `threads` workers, with `resumed` more restored from a journal,
    /// starting at clock reading `start_ns`.
    pub fn new(
        cfg: ProgressConfig,
        threads: usize,
        total: usize,
        resumed: usize,
        start_ns: u64,
    ) -> Self {
        ProgressReporter {
            cfg,
            threads: threads.max(1),
            total,
            resumed,
            start_ns,
            last_emit_ns: None,
            done: 0,
            cell_ns_sum: 0,
            predicted_total_ns: None,
            predicted_done_ns: 0,
            designs: Vec::new(),
        }
    }

    /// Loads the cost model's total predicted work for the cells to
    /// run. With it, [`ProgressReporter::event`] weights the remaining
    /// work by predicted cost (each [`ProgressReporter::on_cell`] then
    /// supplies that cell's prediction) instead of assuming every
    /// remaining cell costs the running mean — under LPT ordering the
    /// tail is the cheap cells, and the running-mean ETA overshoots.
    pub fn with_predicted_work(mut self, total_ns: u64) -> Self {
        self.predicted_total_ns = Some(total_ns);
        self
    }

    /// Records one completed cell and returns the line to emit, if this
    /// completion crosses the rate limit (the final cell always emits).
    /// `label` is the cell's [`Cell::describe`](crate::Cell) identity
    /// (used by the per-cell mode), `design` its design display name,
    /// `predicted_ns` the cost model's prediction for this cell (0 when
    /// no model is loaded; only read after
    /// [`ProgressReporter::with_predicted_work`]).
    pub fn on_cell(
        &mut self,
        now_ns: u64,
        design: &str,
        label: &str,
        wall_ns: u64,
        predicted_ns: u64,
        counters: CounterSnapshot,
    ) -> Option<String> {
        self.done += 1;
        self.cell_ns_sum += wall_ns;
        self.predicted_done_ns = self.predicted_done_ns.saturating_add(predicted_ns);
        match self.designs.iter_mut().find(|(d, _, _)| d == design) {
            Some((_, n, ns)) => {
                *n += 1;
                *ns += wall_ns;
            }
            None => {
                self.designs.push((design.to_string(), 1, wall_ns));
                self.designs.sort_by(|a, b| a.0.cmp(&b.0));
            }
        }
        match self.cfg.mode {
            ProgressMode::Off => None,
            ProgressMode::PerCell => Some(format!(
                "[harness {}/{}] {} done in {}",
                self.done,
                self.total,
                label,
                fmt_ns(wall_ns)
            )),
            ProgressMode::Human | ProgressMode::Json => {
                if !self.should_emit(now_ns) {
                    return None;
                }
                self.last_emit_ns = Some(now_ns);
                let event = self.event(now_ns, counters);
                Some(match self.cfg.mode {
                    ProgressMode::Json => {
                        serde_json::to_string(&event).expect("progress event serializes")
                    }
                    _ => render_human(&event),
                })
            }
        }
    }

    /// Cells completed so far (excluding restored ones).
    pub fn done(&self) -> usize {
        self.done
    }

    /// Mean per-cell wall time so far, ns.
    pub fn mean_cell_ns(&self) -> u64 {
        if self.done == 0 {
            0
        } else {
            self.cell_ns_sum / self.done as u64
        }
    }

    fn should_emit(&self, now_ns: u64) -> bool {
        if self.done == self.total {
            return true;
        }
        match self.last_emit_ns {
            None => now_ns.saturating_sub(self.start_ns) >= self.cfg.interval_ns,
            Some(last) => now_ns.saturating_sub(last) >= self.cfg.interval_ns,
        }
    }

    /// Builds the machine-readable snapshot of the current state.
    pub fn event(&self, now_ns: u64, counters: CounterSnapshot) -> ProgressEvent {
        let elapsed_ns = now_ns.saturating_sub(self.start_ns);
        let remaining = self.total.saturating_sub(self.done);
        // ETA. With a cost model loaded, the remaining work is weighted
        // by predicted cost, calibrated by the observed/predicted ratio
        // so far (a mis-scaled prior still orders cells correctly but
        // would skew absolute ETAs): under LPT ordering the remaining
        // cells are the cheap ones, and pretending they cost the
        // running mean overestimates the tail. Without a model, assume
        // the remaining cells cost the running mean and the pool drains
        // them in ceil(remaining / threads) waves of one mean each.
        // Flooring the division instead would underestimate the tail —
        // 1 cell left on 4 threads takes ~one mean, not mean/4.
        let eta_ns = if self.done == 0 {
            0
        } else if let Some(total) = self.predicted_total_ns {
            let remaining_pred = total.saturating_sub(self.predicted_done_ns);
            let calibrated = if self.predicted_done_ns > 0 {
                (remaining_pred as f64 * self.cell_ns_sum as f64 / self.predicted_done_ns as f64)
                    as u64
            } else {
                remaining_pred
            };
            calibrated.div_ceil(self.threads as u64)
        } else {
            self.mean_cell_ns() * (remaining as u64).div_ceil(self.threads as u64)
        };
        let cells_per_sec = if elapsed_ns == 0 {
            0.0
        } else {
            self.done as f64 * 1e9 / elapsed_ns as f64
        };
        ProgressEvent {
            done: self.done,
            total: self.total,
            resumed: self.resumed,
            elapsed_ns,
            mean_cell_ns: self.mean_cell_ns(),
            eta_ns,
            cells_per_sec,
            baseline_hit_rate: counters.baseline_hit_rate().unwrap_or(0.0),
            trace_hit_rate: counters.trace_hit_rate().unwrap_or(0.0),
            designs: self
                .designs
                .iter()
                .map(|(d, n, ns)| DesignRate {
                    design: d.clone(),
                    done: *n,
                    mean_cell_ns: if *n == 0 { 0 } else { ns / *n as u64 },
                })
                .collect(),
        }
    }
}

/// Renders a [`ProgressEvent`] as the human-readable stderr line.
fn render_human(e: &ProgressEvent) -> String {
    let mut line = format!(
        "[harness] {}/{} cells ({:.1} cells/s, mean {}/cell, ETA {})",
        e.done,
        e.total,
        e.cells_per_sec,
        fmt_ns(e.mean_cell_ns),
        fmt_ns(e.eta_ns),
    );
    if e.resumed > 0 {
        line.push_str(&format!(", {} resumed", e.resumed));
    }
    line.push_str(&format!(
        "; caches: baseline {:.0}%, trace {:.0}%",
        e.baseline_hit_rate * 100.0,
        e.trace_hit_rate * 100.0
    ));
    if !e.designs.is_empty() {
        let per: Vec<String> = e
            .designs
            .iter()
            .map(|d| format!("{} {}×{}", d.design, d.done, fmt_ns(d.mean_cell_ns)))
            .collect();
        line.push_str(&format!("; designs: {}", per.join(", ")));
    }
    line
}

/// Supervision state of one orchestrated worker at a sampling instant —
/// the orchestrator's view, not the worker's own reporter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerPhase {
    /// The worker process is alive and executing cells.
    Running,
    /// The worker died and is waiting out its restart backoff.
    BackingOff,
    /// The worker's shard output was verified complete.
    Done,
    /// The worker exhausted its restart budget.
    Failed,
}

impl WorkerPhase {
    fn label(self) -> &'static str {
        match self {
            WorkerPhase::Running => "running",
            WorkerPhase::BackingOff => "backing off",
            WorkerPhase::Done => "done",
            WorkerPhase::Failed => "FAILED",
        }
    }
}

/// One worker's progress sample: fed by the orchestrator (which counts
/// the worker's journal entries), rendered by [`FleetProgress`].
#[derive(Debug, Clone)]
pub struct WorkerSample {
    /// 0-based worker index.
    pub worker: u32,
    /// Cells durably completed (journaled) by this worker so far.
    pub done: usize,
    /// Cells assigned to this worker's shard.
    pub total: usize,
    /// Restarts consumed so far.
    pub restarts: u32,
    /// Current supervision state.
    pub phase: WorkerPhase,
}

/// Rate-limited fleet-wide progress lines for an orchestrated campaign.
/// Pure state like [`ProgressReporter`]: the orchestrator feeds clock
/// readings and per-worker samples and emits whatever comes back, so the
/// cadence and rendering are unit-testable without subprocesses.
#[derive(Debug)]
pub struct FleetProgress {
    interval_ns: u64,
    start_ns: u64,
    last_emit_ns: Option<u64>,
}

impl FleetProgress {
    /// Creates a fleet reporter emitting at most every `interval_ns`,
    /// starting at clock reading `start_ns`.
    pub fn new(interval_ns: u64, start_ns: u64) -> Self {
        FleetProgress {
            interval_ns,
            start_ns,
            last_emit_ns: None,
        }
    }

    /// Feeds one sampling of the whole fleet; returns the line to emit
    /// when the rate limit allows (and always stays quiet within the
    /// interval, no matter how often the supervision loop samples).
    pub fn sample(&mut self, now_ns: u64, workers: &[WorkerSample]) -> Option<String> {
        let since = match self.last_emit_ns {
            None => now_ns.saturating_sub(self.start_ns),
            Some(last) => now_ns.saturating_sub(last),
        };
        if since < self.interval_ns {
            return None;
        }
        self.last_emit_ns = Some(now_ns);
        Some(Self::render(workers))
    }

    /// Renders one fleet status line (also used for the final summary,
    /// which bypasses the rate limit).
    pub fn render(workers: &[WorkerSample]) -> String {
        let done: usize = workers.iter().map(|w| w.done).sum();
        let total: usize = workers.iter().map(|w| w.total).sum();
        let per: Vec<String> = workers
            .iter()
            .map(|w| {
                let mut s = format!("w{} {}/{} {}", w.worker, w.done, w.total, w.phase.label());
                if w.restarts > 0 {
                    s.push_str(&format!(" ({} restart(s))", w.restarts));
                }
                s
            })
            .collect();
        format!(
            "[orchestrate] {done}/{total} cells across {} worker(s): {}",
            workers.len(),
            per.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    fn counters() -> CounterSnapshot {
        CounterSnapshot {
            baseline_runs: 1,
            baseline_hits: 3,
            trace_generated: 2,
            trace_memo_hits: 6,
            trace_disk_hits: 0,
        }
    }

    #[test]
    fn per_cell_mode_emits_every_completion_with_wall_time() {
        let mut r = ProgressReporter::new(ProgressConfig::per_cell(), 2, 3, 0, 0);
        let line = r
            .on_cell(
                SEC,
                "Unison",
                "Unison @ 512MB on Web Search",
                250_000_000,
                0,
                counters(),
            )
            .expect("per-cell mode always emits");
        assert_eq!(
            line,
            "[harness 1/3] Unison @ 512MB on Web Search done in 250.0ms"
        );
    }

    #[test]
    fn off_mode_emits_nothing_but_still_accumulates() {
        let mut r = ProgressReporter::new(ProgressConfig::off(), 1, 2, 0, 0);
        assert!(r.on_cell(SEC, "Alloy", "x", 100, 0, counters()).is_none());
        assert_eq!(r.done(), 1);
        assert_eq!(r.mean_cell_ns(), 100);
    }

    #[test]
    fn human_mode_rate_limits_and_always_emits_the_final_cell() {
        let cfg = ProgressConfig::human(Some(10));
        let mut r = ProgressReporter::new(cfg, 4, 3, 2, 0);
        // 1 s in: under the 10 s interval, suppressed.
        assert!(r.on_cell(SEC, "Unison", "a", SEC, 0, counters()).is_none());
        // 11 s in: interval crossed.
        let line = r
            .on_cell(11 * SEC, "Alloy", "b", 3 * SEC, 0, counters())
            .expect("interval crossed");
        assert!(line.contains("2/3 cells"), "{line}");
        assert!(line.contains("2 resumed"), "{line}");
        assert!(line.contains("baseline 75%"), "{line}");
        assert!(line.contains("trace 75%"), "{line}");
        assert!(line.contains("Alloy 1×3.00s"), "{line}");
        assert!(line.contains("Unison 1×1.00s"), "{line}");
        // 12 s: inside the interval again, but it is the final cell.
        let last = r
            .on_cell(12 * SEC, "Alloy", "c", SEC, 0, counters())
            .expect("final completion always emits");
        assert!(last.contains("3/3 cells"), "{last}");
    }

    #[test]
    fn eta_scales_with_threads_and_mean() {
        let mut r = ProgressReporter::new(ProgressConfig::human(None), 2, 5, 0, 0);
        r.on_cell(SEC, "Unison", "a", 4 * SEC, 0, CounterSnapshot::default());
        let e = r.event(SEC, CounterSnapshot::default());
        assert_eq!(e.mean_cell_ns, 4 * SEC);
        // 4 cells left × 4 s mean / 2 threads = 8 s.
        assert_eq!(e.eta_ns, 8 * SEC);
        assert!((e.cells_per_sec - 1.0).abs() < 1e-9);
    }

    /// The ETA tail must round up to whole pool waves: with one cell
    /// left on four threads the estimate is ~one mean cell time, not
    /// mean/4 (the floor-division bug this pins against).
    #[test]
    fn eta_tail_rounds_up_to_whole_pool_waves() {
        use crate::telemetry::{Clock, MockClock};
        let clock = MockClock::new(0);
        let mut r = ProgressReporter::new(ProgressConfig::human(None), 4, 2, 0, clock.now_ns());

        clock.advance(4 * SEC);
        r.on_cell(
            clock.now_ns(),
            "Unison",
            "a",
            4 * SEC,
            0,
            CounterSnapshot::default(),
        );
        let e = r.event(clock.now_ns(), CounterSnapshot::default());
        assert_eq!(e.mean_cell_ns, 4 * SEC);
        // 1 cell left on 4 threads: one full wave of the 4 s mean.
        assert_eq!(e.eta_ns, 4 * SEC, "tail ETA must not divide below one wave");

        // 5 remaining on 4 threads is two waves (ceil, not floor).
        let mut r = ProgressReporter::new(ProgressConfig::human(None), 4, 6, 0, clock.now_ns());
        r.on_cell(
            clock.now_ns(),
            "Unison",
            "a",
            4 * SEC,
            0,
            CounterSnapshot::default(),
        );
        let e = r.event(clock.now_ns(), CounterSnapshot::default());
        assert_eq!(e.eta_ns, 8 * SEC);
    }

    /// Under LPT the tail is cheap cells: with a cost model loaded the
    /// ETA must weight remaining work by predicted cost, not claim
    /// whole waves of the (expensive-cell-dominated) running mean.
    #[test]
    fn eta_weights_remaining_work_by_the_cost_model() {
        use crate::telemetry::{Clock, MockClock};
        let clock = MockClock::new(0);
        let mut r = ProgressReporter::new(ProgressConfig::human(None), 1, 3, 0, clock.now_ns())
            .with_predicted_work(6 * SEC);
        clock.advance(4 * SEC);
        // The 4 s cell (predicted 4 s) completes first; 2 s of cheap
        // cells remain. The running-mean estimate would claim
        // 2 waves × 4 s = 8 s.
        r.on_cell(
            clock.now_ns(),
            "Unison",
            "big",
            4 * SEC,
            4 * SEC,
            CounterSnapshot::default(),
        );
        let e = r.event(clock.now_ns(), CounterSnapshot::default());
        assert_eq!(e.eta_ns, 2 * SEC, "cost-weighted tail, not mean waves");
        assert!(e.eta_ns < e.mean_cell_ns * 2, "beats the running-mean ETA");
    }

    /// A prior that mis-scales absolute cost (but orders cells right)
    /// still yields a sane ETA: the observed/predicted ratio calibrates
    /// the remaining predicted work.
    #[test]
    fn eta_calibrates_a_mis_scaled_prior() {
        use crate::telemetry::{Clock, MockClock};
        let clock = MockClock::new(0);
        let mut r = ProgressReporter::new(ProgressConfig::human(None), 1, 3, 0, clock.now_ns())
            .with_predicted_work(12 * SEC);
        clock.advance(4 * SEC);
        // Predicted 8 s, took 4 s: the model runs 2× hot. Remaining
        // 4 s of predicted work should be reported as ~2 s.
        r.on_cell(
            clock.now_ns(),
            "Unison",
            "big",
            4 * SEC,
            8 * SEC,
            CounterSnapshot::default(),
        );
        let e = r.event(clock.now_ns(), CounterSnapshot::default());
        assert_eq!(e.eta_ns, 2 * SEC);
    }

    #[test]
    fn json_mode_emits_parseable_events() {
        let cfg = ProgressConfig::json(Some(0));
        let mut r = ProgressReporter::new(cfg, 1, 1, 0, 0);
        let line = r
            .on_cell(2 * SEC, "Ideal", "cell", SEC, 0, counters())
            .expect("zero interval emits every completion");
        let v = serde_json::parse(&line).expect("valid JSON");
        let txt = serde_json::to_string(&v).unwrap();
        assert!(txt.contains("\"done\""), "{txt}");
        assert!(txt.contains("\"eta_ns\""), "{txt}");
        assert!(txt.contains("\"Ideal\""), "{txt}");
    }

    #[test]
    fn hit_rates_handle_empty_denominators() {
        let c = CounterSnapshot::default();
        assert!(c.baseline_hit_rate().is_none());
        assert!(c.trace_hit_rate().is_none());
        let c = counters();
        assert_eq!(c.baseline_hit_rate(), Some(0.75));
        assert_eq!(c.trace_hit_rate(), Some(0.75));
    }

    #[test]
    fn flag_constructors_pick_intervals() {
        assert_eq!(
            ProgressConfig::human(None).interval_ns,
            ProgressConfig::DEFAULT_INTERVAL_NS
        );
        assert_eq!(ProgressConfig::human(Some(7)).interval_ns, 7 * SEC);
        assert_eq!(ProgressConfig::json(Some(1)).mode, ProgressMode::Json);
        assert!(!ProgressConfig::off().enabled());
        assert!(ProgressConfig::per_cell().enabled());
    }

    #[test]
    fn fleet_progress_rate_limits_and_renders_every_worker() {
        let mut fleet = FleetProgress::new(2 * SEC, 0);
        let workers = vec![
            WorkerSample {
                worker: 0,
                done: 3,
                total: 8,
                restarts: 1,
                phase: WorkerPhase::Running,
            },
            WorkerSample {
                worker: 1,
                done: 8,
                total: 8,
                restarts: 0,
                phase: WorkerPhase::Done,
            },
        ];
        // Inside the interval: quiet no matter how often sampled.
        assert!(fleet.sample(SEC, &workers).is_none());
        assert!(fleet.sample(SEC + 1, &workers).is_none());
        let line = fleet.sample(2 * SEC, &workers).expect("interval crossed");
        assert!(line.contains("11/16 cells across 2 worker(s)"), "{line}");
        assert!(line.contains("w0 3/8 running (1 restart(s))"), "{line}");
        assert!(line.contains("w1 8/8 done"), "{line}");
        // The limiter re-arms from the emission.
        assert!(fleet.sample(3 * SEC, &workers).is_none());
        assert!(fleet.sample(4 * SEC, &workers).is_some());

        let failed = vec![WorkerSample {
            worker: 0,
            done: 2,
            total: 4,
            restarts: 3,
            phase: WorkerPhase::Failed,
        }];
        assert!(FleetProgress::render(&failed).contains("FAILED"));
    }

    #[test]
    fn json_mode_suppresses_human_banners() {
        // The JSONL stream must stay machine-parseable: no freeze or
        // prefill notices interleaved with the event records.
        assert!(!ProgressConfig::json(None).banners());
        assert!(ProgressConfig::json(None).enabled());
        assert!(ProgressConfig::human(None).banners());
        assert!(ProgressConfig::per_cell().banners());
        assert!(!ProgressConfig::off().banners());
    }
}
