//! Checkpoint journal and shard-output artifacts.
//!
//! A [`Journal`] is an append-only JSONL file of completed
//! [`CellResult`]s: a fingerprint header line, then one
//! [`IndexedCell`] per line, flushed as each cell completes. Killing a
//! campaign loses at most the cell mid-write; `--resume` reloads the
//! journal, verifies it belongs to the same plan (fingerprint + per-cell
//! keys), restores the completed prefix, and runs only the remainder —
//! producing output bit-identical to an uninterrupted run because the
//! restored results *are* the uninterrupted run's results.
//!
//! A [`ShardOutput`] is the serialized result of one `--shard I/N`
//! partition: the plan fingerprint, shard coordinates, and this shard's
//! cells tagged with their plan indices. [`merge_shards`] verifies a set
//! of shard files against each other (same fingerprint, same partition
//! arity, disjoint and complete index coverage) and reassembles the
//! full [`CampaignResult`] in grid order — bit-identical to the
//! single-process run.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::campaign::{CampaignResult, CellResult};
use crate::fault;
use crate::scheduler::TaskPlan;
use crate::telemetry::CampaignTiming;

/// Journal schema version (the header's `unison_journal` field).
///
/// Version history: 1 — original `CellResult` schema; 2 — cells carry
/// per-cell `wall_ns` (a version-1 journal's entries no longer parse, so
/// resuming one fails at the header with a clear version message instead
/// of a confusing mid-file "corrupt entry" error).
pub const JOURNAL_VERSION: u32 = 2;

/// One completed cell tagged with its plan position and stable key —
/// the unit both the journal and shard outputs record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndexedCell {
    /// Plan (grid-order) index of the cell.
    pub index: usize,
    /// The cell's [`CellKey`](crate::CellKey) in canonical hex.
    pub key: String,
    /// The completed result.
    pub result: CellResult,
}

/// The journal's first line: identifies which plan the entries belong
/// to, so resuming under a different grid, config, or mode fails loudly
/// instead of silently mixing results.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct JournalHeader {
    unison_journal: u32,
    fingerprint: String,
    total_cells: usize,
    speedups: bool,
}

impl JournalHeader {
    fn of(plan: &TaskPlan) -> JournalHeader {
        JournalHeader {
            unison_journal: JOURNAL_VERSION,
            fingerprint: plan.fingerprint().to_string(),
            total_cells: plan.len(),
            speedups: plan.speedups,
        }
    }
}

/// Append-only JSONL checkpoint journal of completed cells.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
}

impl Journal {
    /// Starts a fresh journal for `plan` at `path`: truncates any
    /// existing file and writes the header line.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (unwritable directory, etc.).
    pub fn create(path: impl Into<PathBuf>, plan: &TaskPlan) -> std::io::Result<Journal> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file = File::create(&path)?;
        let header =
            serde_json::to_string(&JournalHeader::of(plan)).expect("journal header serializes");
        writeln!(file, "{header}")?;
        file.flush()?;
        Ok(Journal {
            path,
            file: Mutex::new(file),
        })
    }

    /// Reopens the journal at `path` for `plan`, returning the journal
    /// (positioned to append) and every completed cell it already
    /// records. A missing file starts fresh (resume of nothing is a
    /// fresh run). The final line may be a torn partial write from a
    /// killed process — it is dropped with a warning; any earlier
    /// malformed line is corruption and an error.
    ///
    /// # Errors
    ///
    /// Returns a message when the journal belongs to a different plan
    /// (fingerprint, total, or mode mismatch), records a cell whose key
    /// contradicts the plan, or is corrupt before its final line.
    pub fn resume(
        path: impl Into<PathBuf>,
        plan: &TaskPlan,
    ) -> Result<(Journal, Vec<IndexedCell>), String> {
        let path = path.into();
        if !path.exists() {
            return Journal::create(&path, plan)
                .map(|j| (j, Vec::new()))
                .map_err(|e| format!("cannot create journal {}: {e}", path.display()));
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
        if text.trim().is_empty() {
            // A created-but-never-written journal: start fresh.
            return Journal::create(&path, plan)
                .map(|j| (j, Vec::new()))
                .map_err(|e| format!("cannot recreate journal {}: {e}", path.display()));
        }
        let parsed = parse_entries(&text, plan, &path)?;
        let Some((entries, good_end)) = parsed else {
            // Nothing durable survived (a kill tore the header itself):
            // start the journal over rather than appending to wreckage.
            eprintln!(
                "[journal] {}: no durable header (killed during creation?); starting fresh",
                path.display()
            );
            return Journal::create(&path, plan)
                .map(|j| (j, Vec::new()))
                .map_err(|e| format!("cannot recreate journal {}: {e}", path.display()));
        };
        if (good_end as usize) < text.len() {
            // Cut the torn tail off before appending, so the next entry
            // starts on its own line instead of gluing onto the
            // fragment a kill left behind.
            let f = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| format!("cannot truncate journal {}: {e}", path.display()))?;
            f.set_len(good_end)
                .map_err(|e| format!("cannot truncate journal {}: {e}", path.display()))?;
        }
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot append to journal {}: {e}", path.display()))?;
        Ok((
            Journal {
                path,
                file: Mutex::new(file),
            },
            entries,
        ))
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed cell (whole line + flush, so a kill tears
    /// at most the line being written).
    ///
    /// Every failure mode degrades instead of panicking — journal loss
    /// costs resumability (the cell re-executes on resume), never the
    /// campaign: a non-serializing entry is skipped with a warning, a
    /// lock poisoned by a panicking sibling worker is recovered (line
    /// writes are atomic with respect to the file's consistency, so the
    /// journal itself is still well-formed), and a failed write (full
    /// disk, yanked mount) is reported and execution continues.
    pub fn append(&self, entry: &IndexedCell) {
        let line = match serde_json::to_string(entry) {
            Ok(line) => line,
            Err(e) => {
                eprintln!(
                    "[journal] cannot serialize entry for cell {} ({e}); \
                     skipping checkpoint (the cell re-executes on resume)",
                    entry.index
                );
                return;
            }
        };
        let mut file = match self.file.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(prefix) = fault::torn_journal_prefix(&line) {
            // Injected mid-write kill: flush half the line with no
            // newline — the exact tail a real crash leaves — then die.
            let _ = write!(file, "{prefix}");
            let _ = file.flush();
            fault::die(&format!(
                "torn-journal tearing the append of cell key={}",
                entry.key
            ));
        }
        if let Err(e) = writeln!(file, "{line}").and_then(|()| file.flush()) {
            eprintln!(
                "[journal] failed to append to {} ({e}); continuing without checkpoint",
                self.path.display()
            );
        }
    }

    /// Reads the completed cells a journal records **without** opening
    /// it for append or truncating its torn tail — the orchestrator's
    /// salvage path for a worker that exhausted its restart budget: the
    /// dead worker's durable completions are recovered read-only, while
    /// the journal file itself is left exactly as the crash left it.
    ///
    /// A missing or never-written file is simply empty. A torn final
    /// line or torn header is tolerated (as in [`Journal::resume`]).
    ///
    /// # Errors
    ///
    /// Returns a message for an unreadable file, a journal belonging to
    /// a different plan, or corruption before the final line.
    pub fn peek(path: &Path, plan: &TaskPlan) -> Result<Vec<IndexedCell>, String> {
        if !path.exists() {
            return Ok(Vec::new());
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
        if text.trim().is_empty() {
            return Ok(Vec::new());
        }
        Ok(parse_entries(&text, plan, path)?
            .map(|(entries, _)| entries)
            .unwrap_or_default())
    }
}

/// Parses and validates journal lines against `plan`, returning the
/// completed entries plus the byte length of the durable prefix (every
/// fully written, newline-terminated line) — the caller truncates any
/// torn tail beyond it before appending. `Ok(None)` means not even the
/// header line was durably written (the caller recreates the journal).
fn parse_entries(
    text: &str,
    plan: &TaskPlan,
    path: &Path,
) -> Result<Option<(Vec<IndexedCell>, u64)>, String> {
    let mut entries: Vec<IndexedCell> = Vec::new();
    let mut seen: HashSet<usize> = HashSet::new();
    let mut header_done = false;
    let mut offset = 0usize;
    let mut good_end = 0usize;
    let raw_lines: Vec<&str> = text.split_inclusive('\n').collect();
    for (k, raw) in raw_lines.iter().enumerate() {
        let lineno = k + 1;
        let is_last = lineno == raw_lines.len();
        let terminated = raw.ends_with('\n');
        let line = raw.trim_end_matches(['\r', '\n']);
        offset += raw.len();
        if line.trim().is_empty() {
            if terminated {
                good_end = offset;
            }
            continue;
        }
        if !header_done {
            if !terminated {
                // A kill between the header write and its newline (or
                // mid-header): nothing durable exists yet. Appending
                // here would glue the first entry onto the header line
                // and corrupt the journal forever.
                return Ok(None);
            }
            let header: JournalHeader = serde_json::from_str(line)
                .map_err(|e| format!("{}: not a campaign journal ({e})", path.display()))?;
            if header.unison_journal != JOURNAL_VERSION {
                return Err(format!(
                    "{}: journal version {} unsupported (expected {JOURNAL_VERSION})",
                    path.display(),
                    header.unison_journal
                ));
            }
            if header.fingerprint != plan.fingerprint()
                || header.total_cells != plan.len()
                || header.speedups != plan.speedups
            {
                return Err(format!(
                    "{}: journal belongs to a different campaign \
                     (journal fingerprint {}, plan fingerprint {}); refusing to resume",
                    path.display(),
                    header.fingerprint,
                    plan.fingerprint()
                ));
            }
            header_done = true;
            good_end = offset;
            continue;
        }
        match serde_json::from_str::<IndexedCell>(line) {
            Ok(entry) if terminated => {
                let Some(planned) = plan.cells.get(entry.index) else {
                    return Err(format!(
                        "{}: journal entry index {} out of range for {}-cell plan",
                        path.display(),
                        entry.index,
                        plan.len()
                    ));
                };
                if planned.key.hex() != entry.key {
                    return Err(format!(
                        "{}: journal entry {} has key {} but the plan expects {}; \
                         this journal belongs to a different campaign",
                        path.display(),
                        entry.index,
                        entry.key,
                        planned.key.hex()
                    ));
                }
                if seen.insert(entry.index) {
                    entries.push(entry);
                }
                good_end = offset;
            }
            Ok(_) => {
                // Parseable but missing its newline: the very tail of a
                // killed append. Treat as torn — re-running one cell is
                // cheaper than ever gluing an append onto it.
                eprintln!(
                    "[journal] {}: dropping unterminated final line {lineno} \
                     (killed mid-write?)",
                    path.display()
                );
            }
            Err(e) => {
                if is_last {
                    eprintln!(
                        "[journal] {}: dropping torn final line {lineno} (killed mid-write?)",
                        path.display()
                    );
                } else {
                    return Err(format!(
                        "{}: corrupt journal entry on line {lineno} ({e})",
                        path.display()
                    ));
                }
            }
        }
    }
    if !header_done {
        // Only blank lines: nothing durable to append after.
        return Ok(None);
    }
    Ok(Some((entries, good_end as u64)))
}

/// The serialized outcome of one campaign partition — what `sweep
/// --shard I/N --json FILE` writes and `sweep --merge` reads back.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardOutput {
    /// Fingerprint of the plan this shard belongs to.
    pub fingerprint: String,
    /// Total cells in the full plan (across all shards).
    pub total_cells: usize,
    /// 0-based shard index.
    pub shard_index: u32,
    /// Shard count of the partition (1 for a full in-process run).
    pub shard_count: u32,
    /// Whether cells carry speedups.
    pub speedups: bool,
    /// This shard's completed cells, tagged with plan indices, in plan
    /// order.
    pub cells: Vec<IndexedCell>,
    /// NoCache baseline simulations this shard executed.
    pub baseline_runs: usize,
    /// Baseline requests served from this shard's memo cache.
    pub baseline_hits: usize,
    /// Trace artifacts this shard generated.
    pub trace_generated: usize,
    /// Trace requests served from this shard's in-memory memo.
    pub trace_memo_hits: usize,
    /// Trace requests served from this shard's on-disk artifact cache.
    pub trace_disk_hits: usize,
    /// Cells restored from a resume journal instead of executed.
    pub resumed_cells: usize,
    /// Per-phase wall-time summary of this shard's run.
    pub timing: CampaignTiming,
}

impl ShardOutput {
    /// Converts a **complete** output (every plan index present) into a
    /// [`CampaignResult`] in grid order.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing indices otherwise.
    pub fn into_campaign_result(self) -> Result<CampaignResult, String> {
        merge_shards(vec![self])
    }
}

/// Verifies `outputs` form one complete partition of a single plan and
/// reassembles the full campaign result in grid order.
///
/// Verification: at least one shard; all fingerprints, totals, modes,
/// and shard counts agree; shard indices are distinct and in range; no
/// two shards claim the same cell; every plan index `0..total` is
/// covered. Counters are summed across shards (a workload's baseline
/// may legitimately run once per shard that needs it).
///
/// # Errors
///
/// Returns a message describing the first inconsistency.
pub fn merge_shards(outputs: Vec<ShardOutput>) -> Result<CampaignResult, String> {
    let Some(first) = outputs.first() else {
        return Err("no shard outputs to merge".into());
    };
    let fingerprint = first.fingerprint.clone();
    let total = first.total_cells;
    let count = first.shard_count;
    let speedups = first.speedups;
    let mut shard_seen: Vec<u32> = Vec::new();
    let mut slots: Vec<Option<IndexedCell>> = (0..total).map(|_| None).collect();
    let mut result = CampaignResult {
        cells: Vec::new(),
        baseline_runs: 0,
        baseline_hits: 0,
        trace_generated: 0,
        trace_memo_hits: 0,
        trace_disk_hits: 0,
        resumed_cells: 0,
        timing: CampaignTiming::default(),
    };
    for (n, out) in outputs.into_iter().enumerate() {
        if out.fingerprint != fingerprint {
            return Err(format!(
                "shard output {n} has fingerprint {} but shard 0 has {fingerprint}; \
                 these partials belong to different campaigns",
                out.fingerprint
            ));
        }
        if out.total_cells != total || out.shard_count != count || out.speedups != speedups {
            return Err(format!(
                "shard output {n} disagrees on plan shape \
                 ({} cells / {} shards vs {total} cells / {count} shards)",
                out.total_cells, out.shard_count
            ));
        }
        if out.shard_index >= count {
            return Err(format!(
                "shard output {n} claims index {} of a {count}-way partition",
                out.shard_index
            ));
        }
        if shard_seen.contains(&out.shard_index) {
            return Err(format!(
                "shard {}/{count} appears more than once",
                out.shard_index + 1
            ));
        }
        shard_seen.push(out.shard_index);
        result.baseline_runs += out.baseline_runs;
        result.baseline_hits += out.baseline_hits;
        result.trace_generated += out.trace_generated;
        result.trace_memo_hits += out.trace_memo_hits;
        result.trace_disk_hits += out.trace_disk_hits;
        result.resumed_cells += out.resumed_cells;
        result.timing.absorb(&out.timing);
        for cell in out.cells {
            let Some(slot) = slots.get_mut(cell.index) else {
                return Err(format!(
                    "cell index {} out of range for the {total}-cell plan",
                    cell.index
                ));
            };
            if let Some(existing) = slot {
                return Err(format!(
                    "cell {} ({}) appears in more than one shard output",
                    cell.index, existing.key
                ));
            }
            *slot = Some(cell);
        }
    }
    let missing: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_none())
        .map(|(i, _)| i)
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "merged shards cover {} of {total} cells; missing indices {:?}{} — \
             did a shard of the partition not run (or not finish)?",
            total - missing.len(),
            &missing[..missing.len().min(8)],
            if missing.len() > 8 { ", ..." } else { "" }
        ));
    }
    result.cells = slots
        .into_iter()
        .map(|s| s.expect("missing indices checked above").result)
        .collect();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ScenarioGrid;
    use crate::scheduler::{InProcessExecutor, ShardSpec, ShardedExecutor};
    use crate::Campaign;
    use unison_sim::{Design, SimConfig};
    use unison_trace::workloads;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("unison-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn grid() -> ScenarioGrid {
        ScenarioGrid::new()
            .designs([Design::Unison, Design::Ideal])
            .workloads([workloads::web_search()])
            .sizes([256 << 20])
    }

    #[test]
    fn journal_round_trips_completed_cells() {
        let dir = scratch("roundtrip");
        let path = dir.join("j.jsonl");
        let cfg = SimConfig::quick_test();
        let plan = TaskPlan::lower(&cfg, &grid(), true);
        let full = Campaign::new(cfg).threads(1).run_speedups(&grid());

        let j = Journal::create(&path, &plan).unwrap();
        for (i, cell) in full.cells().iter().enumerate() {
            j.append(&IndexedCell {
                index: i,
                key: plan.cells[i].key.hex(),
                result: cell.clone(),
            });
        }
        drop(j);

        let (_j, restored) = Journal::resume(&path, &plan).unwrap();
        assert_eq!(restored.len(), full.cells().len());
        assert_eq!(
            serde_json::to_string(&restored.iter().map(|e| &e.result).collect::<Vec<_>>()).unwrap(),
            serde_json::to_string(&full.cells().iter().collect::<Vec<_>>()).unwrap(),
            "journaled results must round-trip bit-identically"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_drops_torn_final_line_but_rejects_mid_corruption() {
        let dir = scratch("torn");
        let path = dir.join("j.jsonl");
        let cfg = SimConfig::quick_test();
        let plan = TaskPlan::lower(&cfg, &grid(), true);
        let full = Campaign::new(cfg).threads(1).run_speedups(&grid());
        let j = Journal::create(&path, &plan).unwrap();
        for (i, cell) in full.cells().iter().enumerate() {
            j.append(&IndexedCell {
                index: i,
                key: plan.cells[i].key.hex(),
                result: cell.clone(),
            });
        }
        drop(j);

        // Torn final line (kill mid-write): entry 1 survives, tail drops.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let torn = format!("{}\n{}\n{}", lines[0], lines[1], &lines[2][..20]);
        std::fs::write(&path, torn).unwrap();
        let (_j, restored) = Journal::resume(&path, &plan).unwrap();
        assert_eq!(restored.len(), 1);
        assert_eq!(restored[0].index, 0);

        // The same damage mid-file is corruption, not truncation.
        let corrupt = format!("{}\n{}\n{}\n", lines[0], &lines[1][..20], lines[2]);
        std::fs::write(&path, corrupt).unwrap();
        let err = Journal::resume(&path, &plan).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_foreign_journals() {
        let dir = scratch("foreign");
        let path = dir.join("j.jsonl");
        let cfg = SimConfig::quick_test();
        let plan = TaskPlan::lower(&cfg, &grid(), true);
        Journal::create(&path, &plan).unwrap();

        // Different seed => different fingerprint.
        let mut other = cfg;
        other.seed = 7;
        let other_plan = TaskPlan::lower(&other, &grid(), true);
        let err = Journal::resume(&path, &other_plan).unwrap_err();
        assert!(err.contains("different campaign"), "{err}");

        // Not a journal at all.
        std::fs::write(&path, "{\"whatever\": 1}\n").unwrap();
        assert!(Journal::resume(&path, &plan).is_err());

        // Missing file: fresh start.
        let fresh = dir.join("missing.jsonl");
        let (_j, restored) = Journal::resume(&fresh, &plan).unwrap();
        assert!(restored.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn peek_salvages_read_only_without_touching_the_file() {
        let dir = scratch("peek");
        let path = dir.join("j.jsonl");
        let cfg = SimConfig::quick_test();
        let plan = TaskPlan::lower(&cfg, &grid(), true);
        let full = Campaign::new(cfg).threads(1).run_speedups(&grid());
        let j = Journal::create(&path, &plan).unwrap();
        for (i, cell) in full.cells().iter().enumerate() {
            j.append(&IndexedCell {
                index: i,
                key: plan.cells[i].key.hex(),
                result: cell.clone(),
            });
        }
        drop(j);

        // Tear the tail as a crash would; peek tolerates it, recovers
        // the durable prefix, and leaves the file bytes untouched.
        let text = std::fs::read_to_string(&path).unwrap();
        let torn = &text[..text.len() - 10];
        std::fs::write(&path, torn).unwrap();
        let salvaged = Journal::peek(&path, &plan).unwrap();
        assert_eq!(salvaged.len(), full.cells().len() - 1);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), torn);

        // Missing file: empty, not an error. Foreign plan: refused.
        assert!(Journal::peek(&dir.join("gone.jsonl"), &plan)
            .unwrap()
            .is_empty());
        let mut other = cfg;
        other.seed = 9;
        let other_plan = TaskPlan::lower(&other, &grid(), true);
        assert!(Journal::peek(&path, &other_plan).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_header_restarts_the_journal_instead_of_gluing_onto_it() {
        let dir = scratch("torn-header");
        let path = dir.join("j.jsonl");
        let cfg = SimConfig::quick_test();
        let plan = TaskPlan::lower(&cfg, &grid(), true);

        // A kill between the header write and its newline: the file
        // holds a complete header JSON but no terminator. Appending
        // as-is would glue the first entry onto the header line and
        // corrupt the journal permanently.
        Journal::create(&path, &plan).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.trim_end()).unwrap();

        let (j, restored) = Journal::resume(&path, &plan).unwrap();
        assert!(restored.is_empty(), "nothing durable to restore");
        let full = Campaign::new(cfg).threads(1).run_speedups(&grid());
        j.append(&IndexedCell {
            index: 0,
            key: plan.cells[0].key.hex(),
            result: full.cells()[0].clone(),
        });
        drop(j);
        // The recreated journal parses cleanly and restores the entry.
        let (_j, restored) = Journal::resume(&path, &plan).unwrap();
        assert_eq!(restored.len(), 1);
        assert_eq!(restored[0].index, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_validates_partitions() {
        let cfg = SimConfig::quick_test();
        let g = grid();
        let shard = |i: u32| {
            Campaign::new(cfg).threads(1).run_plan(
                &g,
                true,
                &ShardedExecutor::new(ShardSpec::new(i, 2).unwrap()),
            )
        };
        let a = shard(0);
        let b = shard(1);
        assert_eq!(a.cells.len() + b.cells.len(), 2);

        // Same shard twice: either duplicate-shard or missing-cells.
        let err = merge_shards(vec![a.clone(), a.clone()]).unwrap_err();
        assert!(
            err.contains("more than once") || err.contains("missing"),
            "{err}"
        );

        // One shard alone: incomplete (unless it happens to hold all
        // cells, in which case the duplicate test above still covered
        // validation).
        if a.cells.len() < a.total_cells {
            let err = merge_shards(vec![a.clone()]).unwrap_err();
            assert!(err.contains("missing"), "{err}");
        }

        // Foreign fingerprint.
        let mut other_cfg = cfg;
        other_cfg.seed = 9;
        let foreign = Campaign::new(other_cfg).threads(1).run_plan(
            &g,
            true,
            &ShardedExecutor::new(ShardSpec::new(1, 2).unwrap()),
        );
        let err = merge_shards(vec![a.clone(), foreign]).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");

        // The happy path. Timing is canonicalized away: two runs never
        // share wall clocks, but the simulated payloads must be
        // bit-identical.
        let merged = merge_shards(vec![a, b]).unwrap();
        let full = Campaign::new(cfg).threads(1).run_speedups(&g);
        assert_eq!(
            serde_json::to_string(&merged.canonical_cells()).unwrap(),
            serde_json::to_string(&full.canonical_cells()).unwrap()
        );
    }

    #[test]
    fn full_run_output_converts_to_campaign_result() {
        let cfg = SimConfig::quick_test();
        let g = grid();
        let out = Campaign::new(cfg)
            .threads(1)
            .run_plan(&g, false, &InProcessExecutor);
        assert_eq!(out.shard_count, 1);
        assert_eq!(out.cells.len(), out.total_cells);
        let r = out.into_campaign_result().unwrap();
        assert_eq!(r.cells().len(), 2);
    }
}
