//! The campaign planner/executor layer.
//!
//! [`TaskPlan::lower`] turns a declarative [`ScenarioGrid`] into an
//! explicit task plan: trace-prefill tasks, baseline tasks, and cell
//! tasks with their dependencies resolved, each cell keyed by a stable
//! [`CellKey`] derived from the serialized specs. Execution is behind
//! the [`Executor`] trait — [`InProcessExecutor`] runs the whole plan on
//! the worker pool (the historical behaviour), and [`ShardedExecutor`]
//! runs the deterministic `--shard I/N` partition of it, so N machines
//! can split one campaign and later [`merge_shards`] the pieces into an
//! output bit-identical to the single-process run.
//!
//! The plan, not the executor, is the source of truth for *what* runs:
//! every executor sees the same cell indices, keys, and dependency
//! edges, so any subset of cells — a shard, or the remainder after a
//! `--resume` restored the journaled prefix — simulates bit-identically
//! to the same cells inside a full run.
//!
//! [`merge_shards`]: crate::journal::merge_shards

use std::collections::{HashMap, HashSet};

use unison_sim::{SimConfig, SystemSpec};
use unison_trace::{Fnv1a, WorkloadSpec};

use crate::baseline::baseline_key;
use crate::campaign::CellResult;
use crate::grid::{Cell, ScenarioGrid};
use crate::pool;

/// Stable identity of one planned cell, derived (FNV-1a) from the full
/// serialized workload spec, the scenario (name and system spec), the
/// design name, the cache size, and the seed. Two processes lowering the
/// same grid under the same config compute identical keys, which is what
/// makes `--shard I/N` partitioning and journal resume deterministic
/// across machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey(u64);

impl CellKey {
    /// Computes the key of `cell`.
    pub fn of(cell: &Cell) -> CellKey {
        let workload = serde_json::to_string(&cell.workload).expect("workload spec serializes");
        let system = serde_json::to_string(&cell.scenario.system).expect("system spec serializes");
        let mut h = Fnv1a::new();
        h.write(workload.as_bytes());
        h.write(&[0]);
        h.write(system.as_bytes());
        h.write(&[0]);
        h.write(cell.scenario.name.as_bytes());
        h.write(&[0]);
        h.write(cell.design.name().as_bytes());
        h.write(&[0]);
        h.write(&cell.cache_bytes.to_le_bytes());
        h.write(&cell.seed.to_le_bytes());
        CellKey(h.finish())
    }

    /// The raw 64-bit key value.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Canonical 16-hex-digit rendering (journal and shard files).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the [`Self::hex`] rendering back.
    ///
    /// # Errors
    ///
    /// Returns a message when `s` is not a 16-digit hex string.
    pub fn from_hex(s: &str) -> Result<CellKey, String> {
        if s.len() != 16 {
            return Err(format!("cell key must be 16 hex digits, got {s:?}"));
        }
        u64::from_str_radix(s, 16)
            .map(CellKey)
            .map_err(|_| format!("bad cell key {s:?}"))
    }

    /// The shard (0-based) this key lands in under an `count`-way
    /// deterministic partition.
    pub fn shard_of(&self, count: u32) -> u32 {
        (self.0 % u64::from(count.max(1))) as u32
    }
}

/// One shard of an N-way campaign partition. `index` is **0-based**
/// internally; the CLI spelling `--shard I/N` is 1-based ("shard 2/4" is
/// the second of four) and [`ShardSpec::parse`] converts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// 0-based shard index, `< count`.
    pub index: u32,
    /// Total shards in the partition.
    pub count: u32,
}

impl ShardSpec {
    /// Builds a spec from a 0-based index.
    ///
    /// # Errors
    ///
    /// Returns a message when `count` is zero or `index >= count`.
    pub fn new(index: u32, count: u32) -> Result<ShardSpec, String> {
        if count == 0 {
            return Err("shard count must be positive".into());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shard(s)"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// Parses the CLI spelling `I/N` with **1-based** `I` (e.g. `1/2`
    /// and `2/2` are the two halves of a 2-way split).
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input, `I == 0`, or `I > N`.
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("shard spec {s:?} must look like I/N (e.g. 1/2)"))?;
        let i: u32 = i
            .trim()
            .parse()
            .map_err(|_| format!("bad shard index in {s:?}"))?;
        let n: u32 = n
            .trim()
            .parse()
            .map_err(|_| format!("bad shard count in {s:?}"))?;
        if i == 0 {
            return Err(format!("shard index is 1-based: use 1/{n}..{n}/{n}"));
        }
        Self::new(i - 1, n)
    }

    /// The 1-based CLI rendering (`"2/4"`).
    pub fn display(&self) -> String {
        format!("{}/{}", self.index + 1, self.count)
    }
}

/// Freeze the `(scaled workload, seed)` trace artifact to `len` records —
/// the prefill dependency shared by every cell replaying that stream.
#[derive(Debug, Clone)]
pub struct TracePrefillTask {
    /// The scaled workload spec the generator runs with (the artifact
    /// key's spec half).
    pub spec: WorkloadSpec,
    /// Trace seed.
    pub seed: u64,
    /// Records to freeze: the maximum any dependent cell (or its
    /// baseline) replays, so the per-key grow-on-demand path never
    /// regenerates mid-campaign.
    pub len: u64,
}

/// Simulate the NoCache baseline for `(workload, system, seed)` — the
/// dependency of every speedup cell measured against it.
#[derive(Debug, Clone)]
pub struct BaselineTask {
    /// Workload under test (unscaled; the store scales it).
    pub workload: WorkloadSpec,
    /// The machine the baseline runs on.
    pub system: SystemSpec,
    /// Trace seed.
    pub seed: u64,
}

/// One cell task with its dependencies resolved.
#[derive(Debug, Clone)]
pub struct PlannedCell {
    /// Position in grid order — the index results are reassembled by.
    pub index: usize,
    /// Stable identity (shard partitioning, journal entries).
    pub key: CellKey,
    /// The cell itself.
    pub cell: Cell,
    /// Index into [`TaskPlan::prefills`] of the trace artifact this cell
    /// replays (when trace sharing is enabled).
    pub prefill: usize,
    /// Index into [`TaskPlan::baselines`] of the baseline this cell's
    /// speedup is measured against (`None` in plain campaigns).
    pub baseline: Option<usize>,
}

/// The explicit task plan one grid lowers to: prefill tasks, baseline
/// tasks, and cell tasks with dependency edges, plus a fingerprint that
/// identifies the plan across processes (journal resume and shard merge
/// both verify it before trusting foreign results).
#[derive(Debug, Clone)]
pub struct TaskPlan {
    /// Cell tasks in grid order.
    pub cells: Vec<PlannedCell>,
    /// Deduplicated trace-prefill tasks (one per `(scaled spec, seed)`,
    /// at the maximum length any dependent requires).
    pub prefills: Vec<TracePrefillTask>,
    /// Deduplicated baseline tasks (one per baseline-store key; empty in
    /// plain campaigns).
    pub baselines: Vec<BaselineTask>,
    /// Whether cells compute speedups over their baselines.
    pub speedups: bool,
    fingerprint: String,
}

impl TaskPlan {
    /// Lowers `grid` under `cfg` into an explicit plan. Deterministic:
    /// the same grid and config produce the same cells, keys, and
    /// fingerprint in any process on any machine.
    pub fn lower(cfg: &SimConfig, grid: &ScenarioGrid, speedups: bool) -> TaskPlan {
        let mut prefills: Vec<TracePrefillTask> = Vec::new();
        let mut prefill_ix: HashMap<(String, u64), usize> = HashMap::new();
        let mut baselines: Vec<BaselineTask> = Vec::new();
        let mut baseline_ix: HashMap<(String, String, u64), usize> = HashMap::new();
        let mut cells = Vec::new();

        for (index, cell) in grid.cells(cfg.seed).into_iter().enumerate() {
            let key = CellKey::of(&cell);

            // The scenario's system spec feeds the trace plan, so its
            // core count lands in the scaled spec — the artifact key.
            // Cells of scenarios sharing an effective workload share a
            // freeze.
            let mut cell_cfg = *cfg;
            cell_cfg.system = cell.scenario.system;
            let tplan = cell_cfg.trace_plan(&cell.workload, cell.cache_bytes);
            let needed = if speedups {
                // The baseline runs at cache size 0; its trace is never
                // longer than a design cell's, but take the max anyway
                // rather than encode that reasoning here.
                tplan
                    .frozen_len
                    .max(cell_cfg.trace_plan(&cell.workload, 0).frozen_len)
            } else {
                tplan.frozen_len
            };
            let pjson =
                serde_json::to_string(&tplan.scaled_spec).expect("workload spec serializes");
            let prefill = *prefill_ix.entry((pjson, cell.seed)).or_insert_with(|| {
                prefills.push(TracePrefillTask {
                    spec: tplan.scaled_spec.clone(),
                    seed: cell.seed,
                    len: 0,
                });
                prefills.len() - 1
            });
            prefills[prefill].len = prefills[prefill].len.max(needed);

            let baseline = speedups.then(|| {
                let bkey = baseline_key(&cell.workload, &cell.scenario.system, cell.seed);
                *baseline_ix.entry(bkey).or_insert_with(|| {
                    baselines.push(BaselineTask {
                        workload: cell.workload.clone(),
                        system: cell.scenario.system,
                        seed: cell.seed,
                    });
                    baselines.len() - 1
                })
            });

            cells.push(PlannedCell {
                index,
                key,
                cell,
                prefill,
                baseline,
            });
        }

        let fingerprint = Self::fingerprint_of(cfg, speedups, &cells);
        TaskPlan {
            cells,
            prefills,
            baselines,
            speedups,
            fingerprint,
        }
    }

    /// Digest identifying this plan: the config, the mode, and every
    /// cell key in order. Two plans with equal fingerprints enumerate
    /// the same cells under the same config, so their results are
    /// interchangeable.
    fn fingerprint_of(cfg: &SimConfig, speedups: bool, cells: &[PlannedCell]) -> String {
        let cfg_json = serde_json::to_string(cfg).expect("sim config serializes");
        let mut h = Fnv1a::new();
        h.write(cfg_json.as_bytes());
        h.write(&[u8::from(speedups)]);
        h.write(&(cells.len() as u64).to_le_bytes());
        for c in cells {
            h.write(&c.key.value().to_le_bytes());
        }
        format!("{:016x}", h.finish())
    }

    /// The plan fingerprint (see [`Self::fingerprint_of`]).
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Number of cell tasks.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the plan has no cell tasks.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// A closure running one trace-sharing batch of cells, returning one
/// result per cell in batch order (see [`ExecHooks::run_batch`]).
pub type BatchRunner<'a> = dyn Fn(&[&PlannedCell]) -> Vec<CellResult> + Sync + 'a;

/// Everything an executor needs besides the plan: the worker-pool
/// width, the set of plan indices already satisfied (restored from a
/// resume journal), the cell-running closure (baseline store and trace
/// store already wired in by the campaign), and a completion observer
/// invoked on the coordinating thread in completion order (journal
/// appends, progress lines).
pub struct ExecHooks<'a> {
    /// Worker-pool width (`1` = inline serial execution).
    pub threads: usize,
    /// Plan indices to skip (already completed in a previous run).
    pub skip: &'a HashSet<usize>,
    /// Runs one cell task to completion.
    pub run: &'a (dyn Fn(&PlannedCell) -> CellResult + Sync),
    /// Runs a whole trace-sharing batch of cell tasks, returning one
    /// result per cell in batch order. When set, execution routes every
    /// cell through [`plan_batches`] groups instead of [`ExecHooks::run`]
    /// — the campaign installs this when trace sharing is enabled, so
    /// cells replaying the same artifact interleave over one streaming
    /// pass of its bytes. Results must be (and are, pinned by the
    /// batching identity tests) bit-identical to per-cell execution.
    pub run_batch: Option<&'a BatchRunner<'a>>,
    /// Observes each completion, on the coordinating thread, in
    /// completion (not grid) order.
    pub observe: &'a mut dyn FnMut(&PlannedCell, &CellResult),
    /// Predicted wall time (ns) per plan index, present when the
    /// campaign has a [`CostModel`](crate::CostModel) loaded. Executors
    /// schedule work longest-first (LPT) under it, so the most
    /// expensive cell starts immediately and the pool's final wave
    /// drains through cheap cells instead of stalling on a straggler.
    /// Scheduling only: results are returned in plan order either way,
    /// and canonical output stays byte-identical.
    pub cost: Option<&'a [u64]>,
}

/// Groups `indices` (plan indices, ascending) into trace-sharing batches:
/// cells replaying the same prefill artifact land in the same group, in
/// first-seen plan order. Each group is then split into sub-batches of at
/// most `ceil(len / threads)` cells (capped at 8) so one oversized group
/// cannot serialize the pool — a batch is one worker task, and its cells
/// simulate interleaved on that worker.
pub fn plan_batches(plan: &TaskPlan, indices: &[usize], threads: usize) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_of: HashMap<usize, usize> = HashMap::new();
    for &i in indices {
        let prefill = plan.cells[i].prefill;
        match group_of.get(&prefill) {
            Some(&g) => groups[g].push(i),
            None => {
                group_of.insert(prefill, groups.len());
                groups.push(vec![i]);
            }
        }
    }
    // Sub-batch cap: small enough that the batches spread across the
    // pool, bounded so one batch never holds more than 8 live systems.
    let cap = indices.len().div_ceil(threads.max(1)).clamp(1, 8);
    groups
        .into_iter()
        .flat_map(|g| {
            g.chunks(cap)
                .map(<[usize]>::to_vec)
                .collect::<Vec<Vec<usize>>>()
        })
        .collect()
}

/// A strategy for executing (a partition of) a [`TaskPlan`].
///
/// Implementations decide *which* cells run ([`Executor::assigned`]);
/// the default [`Executor::execute`] runs that partition on the shared
/// worker pool, which is what both built-in executors want. Results are
/// returned as `(plan index, result)` pairs in plan order regardless of
/// worker scheduling, so execution strategy never changes output.
pub trait Executor {
    /// The plan indices this executor is responsible for, ascending.
    fn assigned(&self, plan: &TaskPlan) -> Vec<usize>;

    /// The shard coordinates of this executor's partition, 0-based
    /// `(index, count)`. The full in-process run is `(0, 1)`.
    fn shard(&self) -> (u32, u32) {
        (0, 1)
    }

    /// Human-readable label for progress lines.
    fn describe(&self) -> String;

    /// Executes every assigned cell not in `hooks.skip` and returns the
    /// completions in plan order. When [`ExecHooks::run_batch`] is set,
    /// cells run in [`plan_batches`] trace-sharing groups (one batch per
    /// worker task); either way results come back `(plan index, result)`
    /// in plan order, so the batching strategy never changes output.
    fn execute(&self, plan: &TaskPlan, hooks: ExecHooks<'_>) -> Vec<(usize, CellResult)> {
        let indices: Vec<usize> = self
            .assigned(plan)
            .into_iter()
            .filter(|i| !hooks.skip.contains(i))
            .collect();
        let observe = hooks.observe;
        if let Some(run_batch) = hooks.run_batch {
            let mut batches = plan_batches(plan, &indices, hooks.threads);
            if let Some(cost) = hooks.cost {
                // LPT over batches: heaviest predicted batch first, ties
                // broken by first plan index for determinism. Grouping
                // is unchanged — only the order batches enter the pool.
                batches.sort_by_key(|b| {
                    let total: u64 = b
                        .iter()
                        .map(|&i| cost.get(i).copied().unwrap_or(0))
                        .fold(0, u64::saturating_add);
                    (std::cmp::Reverse(total), b[0])
                });
            }
            let results: Vec<Vec<CellResult>> = pool::parallel_map_observed(
                &batches,
                hooks.threads,
                |b| {
                    let cells: Vec<&PlannedCell> = b.iter().map(|&i| &plan.cells[i]).collect();
                    let rs = run_batch(&cells);
                    assert_eq!(
                        rs.len(),
                        cells.len(),
                        "batch runner must return one result per cell"
                    );
                    rs
                },
                &|b| {
                    // The [key=…] tag is machine-parseable culprit
                    // identity: the orchestrator greps a dead worker's
                    // log for it to decide which cell to quarantine. A
                    // batch is labeled by its first cell (best effort —
                    // a panic message carrying its own key, like an
                    // injected poison cell, overrides it since culprit
                    // extraction takes the last key on the line).
                    let pc = &plan.cells[b[0]];
                    let first = format!("{} [key={}]", pc.cell.describe(), pc.key.hex());
                    match b.len() {
                        1 => first,
                        n => format!("{first} (+{} trace-sharing cell(s))", n - 1),
                    }
                },
                &mut |slot, rs| {
                    for (&i, r) in batches[slot].iter().zip(rs) {
                        observe(&plan.cells[i], r);
                    }
                },
            );
            let mut out: Vec<(usize, CellResult)> = batches
                .iter()
                .zip(results)
                .flat_map(|(b, rs)| b.iter().copied().zip(rs))
                .collect();
            out.sort_by_key(|(i, _)| *i);
            return out;
        }
        let mut indices = indices;
        if let Some(cost) = hooks.cost {
            crate::costs::order_lpt(cost, &mut indices);
        }
        let tasks: Vec<&PlannedCell> = indices.iter().map(|&i| &plan.cells[i]).collect();
        let run = hooks.run;
        let results = pool::parallel_map_observed(
            &tasks,
            hooks.threads,
            |pc| run(pc),
            &|pc| format!("{} [key={}]", pc.cell.describe(), pc.key.hex()),
            &mut |slot, r| observe(tasks[slot], r),
        );
        let mut out: Vec<(usize, CellResult)> = indices.into_iter().zip(results).collect();
        out.sort_by_key(|(i, _)| *i);
        out
    }
}

/// The historical single-process strategy: every cell of the plan runs
/// on this process's worker pool.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcessExecutor;

impl Executor for InProcessExecutor {
    fn assigned(&self, plan: &TaskPlan) -> Vec<usize> {
        (0..plan.cells.len()).collect()
    }

    fn describe(&self) -> String {
        "in-process".to_string()
    }
}

/// The `--shard I/N` strategy: runs exactly the cells whose [`CellKey`]
/// lands in this shard under the deterministic N-way partition
/// (`key % N == index`). Every shard of the same plan computes the same
/// partition, so N machines given shards `1/N .. N/N` cover every cell
/// exactly once with no coordination.
#[derive(Debug, Clone, Copy)]
pub struct ShardedExecutor {
    shard: ShardSpec,
}

impl ShardedExecutor {
    /// Builds the executor for one shard of the partition.
    pub fn new(shard: ShardSpec) -> Self {
        ShardedExecutor { shard }
    }

    /// The shard this executor runs.
    pub fn spec(&self) -> ShardSpec {
        self.shard
    }
}

impl Executor for ShardedExecutor {
    fn assigned(&self, plan: &TaskPlan) -> Vec<usize> {
        plan.cells
            .iter()
            .filter(|pc| pc.key.shard_of(self.shard.count) == self.shard.index)
            .map(|pc| pc.index)
            .collect()
    }

    fn shard(&self) -> (u32, u32) {
        (self.shard.index, self.shard.count)
    }

    fn describe(&self) -> String {
        format!("shard {} (by cell key)", self.shard.display())
    }
}

/// One shard of a cost-balanced partition: runs an explicit assignment
/// (one bin of [`CostModel::partition`](crate::CostModel::partition))
/// instead of the `key % N` hash split, while claiming the same shard
/// coordinates — shard outputs verify and merge exactly like hashed
/// ones, since coverage is always checked against the assignment.
///
/// The assignment is passed in rather than recomputed so the caller
/// controls which cost model produced it; determinism across processes
/// comes from parent and workers loading the same `costs.json`.
#[derive(Debug, Clone)]
pub struct BalancedExecutor {
    shard: ShardSpec,
    assigned: Vec<usize>,
}

impl BalancedExecutor {
    /// Builds the executor for shard `shard` running exactly
    /// `assigned` (plan indices, any order — execution normalizes).
    pub fn new(shard: ShardSpec, assigned: Vec<usize>) -> Self {
        BalancedExecutor { shard, assigned }
    }
}

impl Executor for BalancedExecutor {
    fn assigned(&self, _plan: &TaskPlan) -> Vec<usize> {
        let mut a = self.assigned.clone();
        a.sort_unstable();
        a
    }

    fn shard(&self) -> (u32, u32) {
        (self.shard.index, self.shard.count)
    }

    fn describe(&self) -> String {
        format!("shard {} (cost-balanced)", self.shard.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unison_sim::{Design, Scenario, SimConfig, SystemSpec};
    use unison_trace::workloads;

    fn grid() -> ScenarioGrid {
        ScenarioGrid::new()
            .designs([Design::Unison, Design::Ideal])
            .workloads([workloads::web_search(), workloads::data_serving()])
            .sizes([128 << 20, 256 << 20])
    }

    #[test]
    fn cell_keys_are_stable_and_distinct() {
        let cfg = SimConfig::quick_test();
        let a = TaskPlan::lower(&cfg, &grid(), true);
        let b = TaskPlan::lower(&cfg, &grid(), true);
        assert_eq!(a.len(), 8);
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.key, y.key, "keys must be deterministic");
        }
        let distinct: HashSet<CellKey> = a.cells.iter().map(|c| c.key).collect();
        assert_eq!(distinct.len(), 8, "distinct cells get distinct keys");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn every_key_component_changes_the_key() {
        let cfg = SimConfig::quick_test();
        let base = TaskPlan::lower(
            &cfg,
            &ScenarioGrid::new()
                .designs([Design::Unison])
                .workloads([workloads::web_search()])
                .sizes([128 << 20]),
            true,
        )
        .cells[0]
            .key;
        for (designs, workload, sizes, seed) in [
            (Design::Ideal, workloads::web_search(), 128u64 << 20, 42u64),
            (Design::Unison, workloads::tpch(), 128 << 20, 42),
            (Design::Unison, workloads::web_search(), 256 << 20, 42),
            (Design::Unison, workloads::web_search(), 128 << 20, 7),
        ] {
            let g = ScenarioGrid::new()
                .designs([designs])
                .workloads([workload])
                .sizes([sizes])
                .seeds([seed]);
            let k = TaskPlan::lower(&cfg, &g, true).cells[0].key;
            assert_ne!(k, base);
        }
        // Scenario name alone changes the key (same machine).
        let named = ScenarioGrid::new()
            .designs([Design::Unison])
            .workloads([workloads::web_search()])
            .sizes([128 << 20])
            .scenarios([Scenario {
                name: "alias".into(),
                system: SystemSpec::default(),
            }]);
        assert_ne!(TaskPlan::lower(&cfg, &named, true).cells[0].key, base);
    }

    #[test]
    fn fingerprint_tracks_config_and_mode() {
        let cfg = SimConfig::quick_test();
        let plan = TaskPlan::lower(&cfg, &grid(), true);
        let plain = TaskPlan::lower(&cfg, &grid(), false);
        assert_ne!(plan.fingerprint(), plain.fingerprint());
        let mut other = cfg;
        other.seed = 7;
        assert_ne!(
            TaskPlan::lower(&other, &grid(), true).fingerprint(),
            plan.fingerprint()
        );
    }

    #[test]
    fn plan_dedupes_prefills_and_baselines() {
        let cfg = SimConfig::quick_test();
        let plan = TaskPlan::lower(&cfg, &grid(), true);
        // Two workloads, one seed, one machine: two artifacts, two
        // baselines, shared by all eight cells.
        assert_eq!(plan.prefills.len(), 2);
        assert_eq!(plan.baselines.len(), 2);
        for pc in &plan.cells {
            assert!(pc.prefill < plan.prefills.len());
            assert!(pc.baseline.unwrap() < plan.baselines.len());
        }
        // Prefill lengths cover the largest dependent cell.
        for (i, p) in plan.prefills.iter().enumerate() {
            let max_dep = plan
                .cells
                .iter()
                .filter(|pc| pc.prefill == i)
                .map(|pc| {
                    let mut c = cfg;
                    c.system = pc.cell.scenario.system;
                    c.trace_plan(&pc.cell.workload, pc.cell.cache_bytes)
                        .frozen_len
                })
                .max()
                .unwrap();
            assert!(p.len >= max_dep);
        }
        let plain = TaskPlan::lower(&cfg, &grid(), false);
        assert!(plain.baselines.is_empty());
        assert!(plain.cells.iter().all(|pc| pc.baseline.is_none()));
    }

    #[test]
    fn shards_partition_the_plan_exactly() {
        let cfg = SimConfig::quick_test();
        let plan = TaskPlan::lower(&cfg, &grid(), true);
        for count in [1u32, 2, 3, 5] {
            let mut seen: Vec<usize> = Vec::new();
            for index in 0..count {
                let exec = ShardedExecutor::new(ShardSpec::new(index, count).unwrap());
                seen.extend(exec.assigned(&plan));
            }
            seen.sort_unstable();
            assert_eq!(
                seen,
                (0..plan.len()).collect::<Vec<_>>(),
                "{count}-way partition must cover every cell exactly once"
            );
        }
        assert_eq!(
            InProcessExecutor.assigned(&plan),
            (0..plan.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn batches_group_by_artifact_and_split_across_the_pool() {
        let cfg = SimConfig::quick_test();
        // 2 workloads × 2 designs × 2 sizes = 8 cells over 2 artifacts.
        let plan = TaskPlan::lower(&cfg, &grid(), true);
        let all: Vec<usize> = (0..plan.len()).collect();

        // Every batch is homogeneous in prefill, and the batches cover
        // the requested indices exactly once, in plan order.
        for threads in [1usize, 2, 4, 16] {
            let batches = plan_batches(&plan, &all, threads);
            let mut covered: Vec<usize> = Vec::new();
            for b in &batches {
                assert!(!b.is_empty());
                let prefill = plan.cells[b[0]].prefill;
                assert!(b.iter().all(|&i| plan.cells[i].prefill == prefill));
                covered.extend(b);
            }
            covered.sort_unstable();
            assert_eq!(covered, all, "{threads} threads");
        }

        // 8 cells on 4 threads: cap is ceil(8/4)=2, so the two 4-cell
        // artifact groups split into four 2-cell batches and the whole
        // pool stays busy.
        let batches = plan_batches(&plan, &all, 4);
        assert_eq!(batches.len(), 4);
        assert!(batches.iter().all(|b| b.len() == 2));

        // One thread: no need to split below the 8-cell cap.
        let serial = plan_batches(&plan, &all, 1);
        assert_eq!(serial.len(), 2, "one batch per artifact");

        // A partial to-run set (resume/shard leftovers) batches the
        // same way.
        let subset = [1usize, 3, 6];
        let partial = plan_batches(&plan, &subset, 1);
        let covered: Vec<usize> = partial.iter().flatten().copied().collect();
        assert_eq!(covered.len(), 3);
        assert!(subset.iter().all(|i| covered.contains(i)));
    }

    #[test]
    fn batch_cap_bounds_live_systems() {
        let cfg = SimConfig::quick_test();
        // One workload, many sizes: a single large artifact group.
        let g = ScenarioGrid::new()
            .designs([Design::Unison, Design::Ideal])
            .workloads([workloads::web_search()])
            .sizes([
                64 << 20,
                128 << 20,
                256 << 20,
                512 << 20,
                1 << 30,
                2 << 30,
                3 << 30,
                4 << 30,
                6 << 30,
                8 << 30,
            ]);
        let plan = TaskPlan::lower(&cfg, &g, false);
        let all: Vec<usize> = (0..plan.len()).collect();
        assert_eq!(plan.len(), 20);
        let batches = plan_batches(&plan, &all, 1);
        assert!(
            batches.iter().all(|b| b.len() <= 8),
            "no batch may hold more than 8 live systems"
        );
        assert!(batches.len() >= 3, "20 cells at cap 8 need ≥3 batches");
    }

    #[test]
    fn shard_spec_parses_one_based_cli_spelling() {
        assert_eq!(
            ShardSpec::parse("1/2").unwrap(),
            ShardSpec { index: 0, count: 2 }
        );
        assert_eq!(
            ShardSpec::parse("2/2").unwrap(),
            ShardSpec { index: 1, count: 2 }
        );
        assert_eq!(ShardSpec::parse("2/2").unwrap().display(), "2/2");
        for bad in ["0/2", "3/2", "x/2", "2", "2/", "/2", "2/0"] {
            assert!(ShardSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn cell_key_hex_round_trips() {
        let cfg = SimConfig::quick_test();
        let key = TaskPlan::lower(&cfg, &grid(), false).cells[3].key;
        assert_eq!(CellKey::from_hex(&key.hex()).unwrap(), key);
        assert!(CellKey::from_hex("xyz").is_err());
        assert!(CellKey::from_hex("123").is_err());
    }
}
