//! Order-preserving parallel map over a scoped worker pool.
//!
//! Plain `std::thread` + channels — no external dependencies. Workers
//! claim item indices from an atomic counter (work stealing over a static
//! grid) and send `(index, result)` pairs back; the caller reassembles
//! results **in input order**, so output is independent of scheduling and
//! a 1-thread pool is byte-identical to an N-thread pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// The default pool width: one worker per available hardware thread.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item, using up to `threads` workers, and returns
/// the results in input order.
///
/// `threads <= 1` runs inline on the caller's thread with no pool at all
/// (the historical serial behaviour). Panics in `f` propagate.
pub fn parallel_map<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let next_ref = &next;
        let f_ref = &f;
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f_ref(&items[i]);
                if tx.send((i, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, v) in rx {
            slots[i] = Some(v);
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("worker pool completed every item"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 4, |&x| x * 3);
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_equals_parallel() {
        let items: Vec<u64> = (0..257).collect();
        let serial = parallel_map(&items, 1, |&x| x.wrapping_mul(0x9e37).rotate_left(7));
        let parallel = parallel_map(&items, 8, |&x| x.wrapping_mul(0x9e37).rotate_left(7));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1u8, 2, 3];
        assert_eq!(parallel_map(&items, 64, |&x| x as u32), vec![1, 2, 3]);
    }
}
