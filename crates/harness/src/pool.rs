//! Order-preserving parallel map over a scoped worker pool.
//!
//! Plain `std::thread` + channels — no external dependencies. Workers
//! claim item indices from an atomic counter (work stealing over a static
//! grid) and send `(index, result)` pairs back; the caller reassembles
//! results **in input order**, so output is independent of scheduling and
//! a 1-thread pool is byte-identical to an N-thread pool.
//!
//! Worker panics are caught and re-raised on the calling thread with the
//! failing item's identity (via the caller's label closure), so a
//! campaign crash names the cell that died instead of dying later on an
//! opaque "pool did not complete" assertion. Remaining workers stop
//! claiming new items once a panic is observed.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use crate::telemetry::fmt_ns;

/// The default pool width: one worker per available hardware thread.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item, using up to `threads` workers, and returns
/// the results in input order.
///
/// `threads <= 1` runs inline on the caller's thread with no pool at all
/// (the historical serial behaviour).
///
/// # Panics
///
/// A panic in `f` is re-raised on the calling thread, labeled with the
/// failing item's index. Use [`parallel_map_observed`] to label items
/// with domain identity instead.
pub fn parallel_map<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    parallel_map_observed(items, threads, f, &|_| String::new(), &mut |_, _| {})
}

/// [`parallel_map`] plus diagnosability and completion hooks:
///
/// * `label` names an item for panic messages (called only when that
///   item's `f` panicked — e.g. the cell's workload/scenario/design/size
///   identity);
/// * `observe(index, &result)` runs on the **calling** thread as each
///   result arrives, in completion (not input) order — the hook for
///   checkpoint-journal appends and progress lines. It is not called for
///   items whose `f` panicked.
///
/// # Panics
///
/// A panic in `f` stops workers from claiming further items and is then
/// re-raised on the calling thread as
/// `"worker panicked running <label> after <elapsed>: <payload>"` — the
/// elapsed time distinguishes a cell that crashed instantly from one
/// that churned for minutes first (hung-vs-crashed triage in long
/// campaigns).
pub fn parallel_map_observed<I, T, F>(
    items: &[I],
    threads: usize,
    f: F,
    label: &(dyn Fn(&I) -> String + Sync),
    observe: &mut dyn FnMut(usize, &T),
) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for (i, item) in items.iter().enumerate() {
            let start = Instant::now();
            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(v) => {
                    observe(i, &v);
                    out.push(v);
                }
                Err(payload) => relabel_panic(i, &label(item), elapsed_ns(start), payload),
            }
        }
        return out;
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    // The first worker panic observed, by input index (ties broken by
    // arrival; the index makes the error deterministic enough to act on),
    // with how long the item had been running when it died.
    let mut panicked: Option<(usize, u64, Box<dyn std::any::Any + Send>)> = None;

    std::thread::scope(|scope| {
        type Outcome<T> = Result<T, (u64, Box<dyn std::any::Any + Send>)>;
        let (tx, rx) = mpsc::channel::<(usize, Outcome<T>)>();
        let next_ref = &next;
        let abort_ref = &abort;
        let f_ref = &f;
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || loop {
                if abort_ref.load(Ordering::Relaxed) {
                    break;
                }
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let start = Instant::now();
                let out = catch_unwind(AssertUnwindSafe(|| f_ref(&items[i])))
                    .map_err(|payload| (elapsed_ns(start), payload));
                if out.is_err() {
                    abort_ref.store(true, Ordering::Relaxed);
                }
                if tx.send((i, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, outcome) in rx {
            match outcome {
                // Completions are observed even after a panic was
                // recorded: cells that were in flight when a sibling
                // died still finished, and dropping them would lose
                // checkpoint-journal entries exactly when the journal
                // matters most.
                Ok(v) => {
                    observe(i, &v);
                    slots[i] = Some(v);
                }
                Err((ns, payload)) => {
                    if panicked.is_none() {
                        panicked = Some((i, ns, payload));
                    }
                }
            }
        }
    });

    if let Some((i, ns, payload)) = panicked {
        relabel_panic(i, &label(&items[i]), ns, payload);
    }
    slots
        .into_iter()
        .map(|s| s.expect("worker pool completed every item"))
        .collect()
}

/// Nanoseconds elapsed since `start`, saturated into `u64`.
fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Re-raises a caught worker panic on the calling thread, prefixed with
/// the failing item's identity and how long it had been running — a
/// crash after milliseconds and a crash after minutes of churn are
/// different bugs.
fn relabel_panic(
    index: usize,
    label: &str,
    elapsed_ns: u64,
    payload: Box<dyn std::any::Any + Send>,
) -> ! {
    let what = if label.is_empty() {
        format!("item {index}")
    } else {
        format!("{label} (item {index})")
    };
    let after = fmt_ns(elapsed_ns);
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        // Opaque payload: keep the original so a caller's downcast-based
        // handling still works.
        eprintln!("[pool] worker panicked running {what} after {after} (non-string payload)");
        resume_unwind(payload);
    };
    // Also emitted directly to stderr: the orchestrator diagnoses a dead
    // worker from its captured log, and this line carries the cell
    // identity (including the [key=…] tag) even if a custom panic hook
    // swallows or reformats the re-raised panic below.
    eprintln!("[pool] worker panicked running {what} after {after}: {msg}");
    panic!("worker panicked running {what} after {after}: {msg}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 4, |&x| x * 3);
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_equals_parallel() {
        let items: Vec<u64> = (0..257).collect();
        let serial = parallel_map(&items, 1, |&x| x.wrapping_mul(0x9e37).rotate_left(7));
        let parallel = parallel_map(&items, 8, |&x| x.wrapping_mul(0x9e37).rotate_left(7));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1u8, 2, 3];
        assert_eq!(parallel_map(&items, 64, |&x| x as u32), vec![1, 2, 3]);
    }

    #[test]
    fn observe_sees_every_completion_on_the_caller_thread() {
        let items: Vec<u32> = (0..50).collect();
        let caller = std::thread::current().id();
        for threads in [1, 4] {
            let mut seen: Vec<(usize, u32)> = Vec::new();
            let out = parallel_map_observed(
                &items,
                threads,
                |&x| x + 1,
                &|_| String::new(),
                &mut |i, &v| {
                    assert_eq!(std::thread::current().id(), caller);
                    seen.push((i, v));
                },
            );
            assert_eq!(out.len(), 50);
            seen.sort_unstable();
            assert_eq!(
                seen,
                (0..50).map(|i| (i, i as u32 + 1)).collect::<Vec<_>>(),
                "observe must fire exactly once per item ({threads} threads)"
            );
        }
    }

    #[test]
    fn worker_panic_is_relabeled_with_the_item_identity() {
        for threads in [1usize, 4] {
            let items: Vec<u32> = (0..16).collect();
            let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
                parallel_map_observed(
                    &items,
                    threads,
                    |&x| {
                        if x == 9 {
                            panic!("simulated cell failure");
                        }
                        x
                    },
                    &|&x| format!("Unison @ {x}MB on Web Search [default] (seed 42)"),
                    &mut |_, _| {},
                )
            }))
            .expect_err("panic must propagate");
            let msg = err
                .downcast_ref::<String>()
                .expect("relabeled panic is a String")
                .clone();
            assert!(
                msg.contains("Unison @ 9MB on Web Search [default] (seed 42)"),
                "panic must name the failing cell ({threads} threads): {msg}"
            );
            assert!(msg.contains("simulated cell failure"), "{msg}");
            assert!(
                msg.contains(" after "),
                "panic must say how long the cell ran ({threads} threads): {msg}"
            );
        }
    }

    #[test]
    fn observe_is_not_called_for_panicked_items() {
        let items: Vec<u32> = (0..8).collect();
        let mut observed = Vec::new();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_map_observed(
                &items,
                1,
                |&x| {
                    if x == 3 {
                        panic!("boom");
                    }
                    x
                },
                &|_| String::new(),
                &mut |i, _: &u32| observed.push(i),
            )
        }));
        assert!(result.is_err());
        assert_eq!(observed, vec![0, 1, 2], "serial path observes the prefix");
    }
}
