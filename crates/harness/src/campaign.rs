//! Campaign execution: grid → worker pool → typed results.

use std::sync::atomic::{AtomicUsize, Ordering};

use serde::Serialize;
use unison_sim::{run_experiment, run_speedup_with_baseline, Design, RunResult, SimConfig};

use crate::baseline::BaselineStore;
use crate::grid::{Cell, ExperimentGrid};
use crate::pool::{self, parallel_map};
use crate::stats::geomean;

/// One executed cell: the simulation outcome plus the seed it ran under
/// and (for speedup campaigns) its speedup over the memoized NoCache
/// baseline.
#[derive(Debug, Clone, Serialize)]
pub struct CellResult {
    /// Trace seed the cell ran with.
    pub seed: u64,
    /// Speedup over the NoCache baseline (`None` for plain campaigns).
    pub speedup: Option<f64>,
    /// The full simulation result.
    pub run: RunResult,
}

impl CellResult {
    /// Design display name.
    pub fn design(&self) -> &str {
        &self.run.design
    }

    /// Workload display name.
    pub fn workload(&self) -> &str {
        &self.run.workload
    }

    /// Nominal cache size in bytes.
    pub fn cache_bytes(&self) -> u64 {
        self.run.cache_bytes
    }
}

/// All results of one campaign, in grid order.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignResult {
    /// Executed cells, ordered exactly as [`ExperimentGrid::cells`]
    /// enumerated them (independent of worker scheduling).
    pub cells: Vec<CellResult>,
    /// NoCache baseline simulations actually executed.
    pub baseline_runs: usize,
    /// Baseline requests served from the memo cache.
    pub baseline_hits: usize,
}

impl CampaignResult {
    /// The executed cells in grid order.
    pub fn cells(&self) -> &[CellResult] {
        &self.cells
    }

    /// First cell matching `(workload, design name, cache size)`.
    pub fn get(&self, workload: &str, design: &str, cache_bytes: u64) -> Option<&CellResult> {
        self.cells.iter().find(|c| {
            c.workload() == workload && c.design() == design && c.cache_bytes() == cache_bytes
        })
    }

    /// Cell matching `(workload, design name, cache size, seed)`.
    pub fn get_seeded(
        &self,
        workload: &str,
        design: &str,
        cache_bytes: u64,
        seed: u64,
    ) -> Option<&CellResult> {
        self.cells.iter().find(|c| {
            c.workload() == workload
                && c.design() == design
                && c.cache_bytes() == cache_bytes
                && c.seed == seed
        })
    }

    /// Speedups of every cell matching `(design name, cache size)`, in
    /// grid (workload) order.
    pub fn speedups(&self, design: &str, cache_bytes: u64) -> Vec<f64> {
        self.cells
            .iter()
            .filter(|c| c.design() == design && c.cache_bytes() == cache_bytes)
            .filter_map(|c| c.speedup)
            .collect()
    }

    /// Geometric-mean speedup across workloads for `(design, size)` —
    /// the summary bar of Figures 7 and 8.
    pub fn geomean_speedup(&self, design: &str, cache_bytes: u64) -> Option<f64> {
        geomean(&self.speedups(design, cache_bytes))
    }
}

/// Executes [`ExperimentGrid`]s on a worker pool under one [`SimConfig`].
#[derive(Debug, Clone)]
pub struct Campaign {
    cfg: SimConfig,
    threads: usize,
    progress: bool,
}

impl Campaign {
    /// Creates a campaign running under `cfg` with one worker per
    /// available hardware thread.
    pub fn new(cfg: SimConfig) -> Self {
        Campaign {
            cfg,
            threads: pool::default_threads(),
            progress: false,
        }
    }

    /// Sets the worker-pool width. `1` reproduces the historical serial
    /// behaviour exactly (inline execution, no pool).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables per-cell progress lines on stderr.
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// The simulation configuration cells run under.
    pub fn cfg(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs every cell of `grid`; no baselines, `speedup` is `None`.
    pub fn run(&self, grid: &ExperimentGrid) -> CampaignResult {
        self.execute(grid, None)
    }

    /// Runs every cell of `grid` and computes each cell's speedup over
    /// the NoCache baseline. Baselines are memoized: exactly one NoCache
    /// simulation per `(workload, seed)` in the whole campaign, prefilled
    /// in parallel before the design cells run.
    pub fn run_speedups(&self, grid: &ExperimentGrid) -> CampaignResult {
        let store = BaselineStore::new(self.cfg);
        let keys = grid.baseline_keys(self.cfg.seed);
        if self.progress {
            eprintln!(
                "[harness] prefilling {} baseline(s) on {} thread(s)",
                keys.len(),
                self.threads
            );
        }
        parallel_map(&keys, self.threads, |(spec, seed)| {
            store.get(spec, *seed);
        });
        self.execute(grid, Some(&store))
    }

    /// Generic order-preserving parallel map on this campaign's pool —
    /// for experiments whose cells are not plain
    /// (design, size, workload) simulations (custom policies, shadow
    /// predictors).
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        parallel_map(items, self.threads, f)
    }

    fn execute(&self, grid: &ExperimentGrid, store: Option<&BaselineStore>) -> CampaignResult {
        let cells = grid.cells(self.cfg.seed);
        let total = cells.len();
        let done = AtomicUsize::new(0);
        let results = parallel_map(&cells, self.threads, |cell| {
            let r = self.run_cell(cell, store);
            if self.progress {
                let k = done.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!(
                    "[harness {k}/{total}] {} @ {}MB on {} (seed {}) done",
                    cell.design.name(),
                    cell.cache_bytes >> 20,
                    cell.workload.name,
                    cell.seed
                );
            }
            r
        });
        CampaignResult {
            cells: results,
            baseline_runs: store.map_or(0, BaselineStore::computed_runs),
            baseline_hits: store.map_or(0, BaselineStore::cache_hits),
        }
    }

    fn run_cell(&self, cell: &Cell, store: Option<&BaselineStore>) -> CellResult {
        let mut cfg = self.cfg;
        cfg.seed = cell.seed;
        match store {
            Some(store) => {
                let base = store.get(&cell.workload, cell.seed);
                if cell.design == Design::NoCache {
                    // The baseline *is* this cell's run; reuse it. Key the
                    // result by the cell's declared size so grid-coordinate
                    // lookups stay uniform.
                    let mut run = base;
                    run.cache_bytes = cell.cache_bytes;
                    CellResult {
                        seed: cell.seed,
                        speedup: Some(1.0),
                        run,
                    }
                } else {
                    let s = run_speedup_with_baseline(
                        cell.design,
                        cell.cache_bytes,
                        &cell.workload,
                        &cfg,
                        &base,
                    );
                    CellResult {
                        seed: cell.seed,
                        speedup: Some(s.speedup),
                        run: s.run,
                    }
                }
            }
            None => CellResult {
                seed: cell.seed,
                speedup: None,
                run: run_experiment(cell.design, cell.cache_bytes, &cell.workload, &cfg),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unison_trace::workloads;

    fn tiny_grid() -> ExperimentGrid {
        ExperimentGrid::new()
            .designs([Design::Unison, Design::Ideal])
            .workloads([workloads::web_search(), workloads::data_serving()])
            .sizes([256 << 20])
    }

    #[test]
    fn plain_run_has_no_speedups() {
        let r = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .run(&tiny_grid());
        assert_eq!(r.cells.len(), 4);
        assert!(r.cells.iter().all(|c| c.speedup.is_none()));
        assert_eq!(r.baseline_runs, 0);
    }

    #[test]
    fn speedup_run_memoizes_baselines() {
        let r = Campaign::new(SimConfig::quick_test())
            .threads(2)
            .run_speedups(&tiny_grid());
        assert_eq!(r.cells.len(), 4);
        assert!(r.cells.iter().all(|c| c.speedup.is_some()));
        // Two workloads, one seed: exactly two baseline simulations.
        assert_eq!(r.baseline_runs, 2);
        assert!(r.baseline_hits >= 4, "every cell reuses its baseline");
    }

    #[test]
    fn lookup_helpers_find_cells() {
        let r = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .run_speedups(&tiny_grid());
        let c = r
            .get("Web Search", "Unison", 256 << 20)
            .expect("cell exists");
        assert_eq!(c.workload(), "Web Search");
        assert!(c.speedup.unwrap() > 0.0);
        assert_eq!(r.speedups("Ideal", 256 << 20).len(), 2);
        assert!(r.geomean_speedup("Ideal", 256 << 20).unwrap() > 1.0);
        assert!(r.get("Web Search", "Alloy", 256 << 20).is_none());
    }

    #[test]
    fn nocache_cells_reuse_the_baseline() {
        let grid = ExperimentGrid::new()
            .designs([Design::NoCache, Design::Ideal])
            .workloads([workloads::web_search()])
            .sizes([256 << 20]);
        let r = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .run_speedups(&grid);
        assert_eq!(r.baseline_runs, 1, "NoCache cell must not re-simulate");
        let nc = r
            .get("Web Search", "NoCache", 256 << 20)
            .expect("baseline cell");
        assert_eq!(nc.speedup, Some(1.0));
    }
}
