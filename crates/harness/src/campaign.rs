//! Campaign execution: grid → task plan → executor → typed results.
//!
//! The campaign no longer owns a monolithic run loop: it lowers the grid
//! through [`TaskPlan::lower`] and hands the plan to an
//! [`Executor`](crate::Executor) — in-process for `run`/`run_speedups`,
//! [`ShardedExecutor`] for `run_shard*` — wiring in the memoized
//! baseline/trace stores and, when configured, the checkpoint
//! [`Journal`].

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use unison_sim::{
    check_baseline, run_experiment_with_source, run_speedup_with_baseline_source, CellSim, Design,
    RunResult, SimConfig, SystemSpec, TraceSource,
};
use unison_trace::TraceArtifact;

use crate::baseline::BaselineStore;
use crate::fault;
use crate::grid::{Cell, ScenarioGrid};
use crate::journal::{IndexedCell, Journal, ShardOutput};
use crate::pool::{self, parallel_map};
use crate::progress::{CounterSnapshot, ProgressConfig, ProgressReporter};
use crate::scheduler::{
    BaselineTask, CellKey, ExecHooks, Executor, InProcessExecutor, PlannedCell, ShardSpec,
    ShardedExecutor, TaskPlan, TracePrefillTask,
};
use crate::stats::geomean;
use crate::telemetry::{CampaignTiming, Clock, MonotonicClock, Phase, Telemetry};
use crate::trace_store::TraceStore;

/// One executed cell: the simulation outcome plus the scenario and seed
/// it ran under and (for speedup campaigns) its speedup over the memoized
/// NoCache baseline.
///
/// Serialization round-trips losslessly (pinned by the scheduler tests):
/// a `CellResult` written to a shard file or checkpoint journal and read
/// back re-serializes to identical bytes, which is what makes
/// shard-merge and resume bit-identical to a single uninterrupted run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// Scenario display name.
    pub scenario: String,
    /// The machine the cell simulated (full spec, self-describing in
    /// JSON output).
    pub system: SystemSpec,
    /// Core count the run actually drove (the spec's override, or the
    /// workload's own pod size).
    pub cores: u32,
    /// Trace seed the cell ran with.
    pub seed: u64,
    /// Speedup over the NoCache baseline (`None` for plain campaigns).
    pub speedup: Option<f64>,
    /// The full simulation result.
    pub run: RunResult,
    /// Wall time this cell took to simulate, in nanoseconds (0 for
    /// NoCache cells that reuse the memoized baseline without running).
    ///
    /// Timing is **observability, not identity**: it never feeds the
    /// plan fingerprint or cell keys, and bit-identity comparisons
    /// (shard merge, resume, CI byte-compares) strip it first via
    /// [`CellResult::canonicalized`] — two runs of the same cell produce
    /// identical simulation payloads but necessarily different clocks.
    pub wall_ns: u64,
}

impl CellResult {
    /// Design display name.
    pub fn design(&self) -> &str {
        &self.run.design
    }

    /// A copy with the timing stripped (`wall_ns = 0`): the canonical
    /// form byte-identity comparisons reduce cells to before comparing.
    pub fn canonicalized(&self) -> CellResult {
        CellResult {
            wall_ns: 0,
            ..self.clone()
        }
    }

    /// Workload display name.
    pub fn workload(&self) -> &str {
        &self.run.workload
    }

    /// Nominal cache size in bytes.
    pub fn cache_bytes(&self) -> u64 {
        self.run.cache_bytes
    }
}

/// All results of one campaign, in grid order.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignResult {
    /// Executed cells, ordered exactly as [`ScenarioGrid::cells`]
    /// enumerated them (independent of worker scheduling).
    pub cells: Vec<CellResult>,
    /// NoCache baseline simulations actually executed.
    pub baseline_runs: usize,
    /// Baseline requests served from the memo cache.
    pub baseline_hits: usize,
    /// Trace artifacts generated (0 when trace sharing is disabled or
    /// everything came from the disk cache).
    pub trace_generated: usize,
    /// Trace requests served from the in-memory artifact memo.
    pub trace_memo_hits: usize,
    /// Trace requests served from the on-disk artifact cache.
    pub trace_disk_hits: usize,
    /// Cells restored from a `--resume` checkpoint journal instead of
    /// re-simulated (0 for campaigns without a journal).
    pub resumed_cells: usize,
    /// Per-phase wall-time summary (summed across shards for merged
    /// results; all zeros for hand-built fixtures).
    pub timing: CampaignTiming,
}

impl CampaignResult {
    /// The executed cells in grid order.
    pub fn cells(&self) -> &[CellResult] {
        &self.cells
    }

    /// The cells with all timing stripped ([`CellResult::canonicalized`])
    /// — what bit-identity tests and the CI byte-compare serialize, so
    /// that runs which are identical in every simulated respect compare
    /// equal despite wall clocks never repeating.
    pub fn canonical_cells(&self) -> Vec<CellResult> {
        self.cells.iter().map(CellResult::canonicalized).collect()
    }

    /// Rolls the memoization counters and timing into the summary block
    /// the JSON sink renders and the `sweep` footer prints.
    pub fn summary(&self) -> CampaignSummary {
        let cell_wall_ns_total: u64 = self.cells.iter().map(|c| c.wall_ns).sum();
        let n = self.cells.len() as u64;
        CampaignSummary {
            cells: self.cells.len(),
            baseline_runs: self.baseline_runs,
            baseline_hits: self.baseline_hits,
            trace_generated: self.trace_generated,
            trace_memo_hits: self.trace_memo_hits,
            trace_disk_hits: self.trace_disk_hits,
            resumed_cells: self.resumed_cells,
            cell_wall_ns_total,
            cell_wall_ns_mean: cell_wall_ns_total.checked_div(n).unwrap_or(0),
            timing: self.timing,
        }
    }

    /// First cell matching `(workload, design name, cache size)`.
    pub fn get(&self, workload: &str, design: &str, cache_bytes: u64) -> Option<&CellResult> {
        self.cells.iter().find(|c| {
            c.workload() == workload && c.design() == design && c.cache_bytes() == cache_bytes
        })
    }

    /// Cell matching `(workload, design name, cache size, seed)`.
    pub fn get_seeded(
        &self,
        workload: &str,
        design: &str,
        cache_bytes: u64,
        seed: u64,
    ) -> Option<&CellResult> {
        self.cells.iter().find(|c| {
            c.workload() == workload
                && c.design() == design
                && c.cache_bytes() == cache_bytes
                && c.seed == seed
        })
    }

    /// Speedups of every cell matching `(design name, cache size)`, in
    /// grid (workload) order.
    pub fn speedups(&self, design: &str, cache_bytes: u64) -> Vec<f64> {
        self.cells
            .iter()
            .filter(|c| c.design() == design && c.cache_bytes() == cache_bytes)
            .filter_map(|c| c.speedup)
            .collect()
    }

    /// Geometric-mean speedup across workloads for `(design, size)` —
    /// the summary bar of Figures 7 and 8.
    pub fn geomean_speedup(&self, design: &str, cache_bytes: u64) -> Option<f64> {
        geomean(&self.speedups(design, cache_bytes))
    }

    /// Cell matching `(scenario name, workload, design, size, seed)` —
    /// the fully qualified lookup for multi-scenario sweeps.
    pub fn get_in_scenario(
        &self,
        scenario: &str,
        workload: &str,
        design: &str,
        cache_bytes: u64,
        seed: u64,
    ) -> Option<&CellResult> {
        self.cells.iter().find(|c| {
            c.scenario == scenario
                && c.workload() == workload
                && c.design() == design
                && c.cache_bytes() == cache_bytes
                && c.seed == seed
        })
    }

    /// Speedups of every cell matching `(scenario, design, size)`, in
    /// grid (workload) order.
    pub fn speedups_in_scenario(&self, scenario: &str, design: &str, cache_bytes: u64) -> Vec<f64> {
        self.cells
            .iter()
            .filter(|c| {
                c.scenario == scenario && c.design() == design && c.cache_bytes() == cache_bytes
            })
            .filter_map(|c| c.speedup)
            .collect()
    }

    /// Geometric-mean speedup across workloads for
    /// `(scenario, design, size)`.
    pub fn geomean_speedup_in_scenario(
        &self,
        scenario: &str,
        design: &str,
        cache_bytes: u64,
    ) -> Option<f64> {
        geomean(&self.speedups_in_scenario(scenario, design, cache_bytes))
    }
}

/// The counter-and-timing summary of one campaign: everything
/// [`CampaignResult`] knows besides the cells themselves, in one
/// serializable block ([`CampaignResult::summary`]).
#[derive(Debug, Clone, Serialize)]
pub struct CampaignSummary {
    /// Number of executed (or restored) cells.
    pub cells: usize,
    /// NoCache baseline simulations actually executed.
    pub baseline_runs: usize,
    /// Baseline requests served from the memo cache.
    pub baseline_hits: usize,
    /// Trace artifacts generated.
    pub trace_generated: usize,
    /// Trace requests served from the in-memory artifact memo.
    pub trace_memo_hits: usize,
    /// Trace requests served from the on-disk artifact cache.
    pub trace_disk_hits: usize,
    /// Cells restored from a resume journal.
    pub resumed_cells: usize,
    /// Sum of per-cell wall times — aggregate simulation compute, which
    /// exceeds elapsed time on a multi-threaded pool.
    pub cell_wall_ns_total: u64,
    /// Mean per-cell wall time.
    pub cell_wall_ns_mean: u64,
    /// Per-phase wall-time summary.
    pub timing: CampaignTiming,
}

/// How a campaign sources its trace record streams.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TracePolicy {
    /// Regenerate the stream per cell with `WorkloadGen` (the historical
    /// behaviour; no artifact memory footprint).
    Generate,
    /// Freeze each `(workload, seed)` stream once per campaign and
    /// replay it from a shared in-memory artifact (bit-identical to
    /// generation; the default).
    #[default]
    Memoize,
    /// [`TracePolicy::Memoize`] plus an on-disk artifact cache, so
    /// repeated campaign invocations skip generation entirely.
    Disk(PathBuf),
}

/// Executes [`ScenarioGrid`]s under one [`SimConfig`] (whose system spec
/// each cell's scenario overrides): lowers the grid to a [`TaskPlan`]
/// and runs it through an [`Executor`] on the worker pool, optionally
/// checkpointing completions to a [`Journal`] and resuming from one.
#[derive(Debug, Clone)]
pub struct Campaign {
    cfg: SimConfig,
    threads: usize,
    progress: ProgressConfig,
    traces: TracePolicy,
    batch: bool,
    journal: Option<PathBuf>,
    resume: bool,
    excluded: HashSet<CellKey>,
    clock: Arc<dyn Clock>,
    costs: Option<Arc<crate::costs::CostModel>>,
}

impl Campaign {
    /// Creates a campaign running under `cfg` with one worker per
    /// available hardware thread.
    pub fn new(cfg: SimConfig) -> Self {
        Campaign {
            cfg,
            threads: pool::default_threads(),
            progress: ProgressConfig::off(),
            traces: TracePolicy::default(),
            batch: true,
            journal: None,
            resume: false,
            excluded: HashSet::new(),
            clock: Arc::new(MonotonicClock::new()),
            costs: None,
        }
    }

    /// Loads a [`CostModel`](crate::CostModel): the executor schedules
    /// work longest-first (LPT) under its predictions and the progress
    /// ETA weights remaining work by predicted cost. Scheduling only —
    /// results and canonical output are byte-identical with or without
    /// a model.
    pub fn costs(mut self, model: crate::costs::CostModel) -> Self {
        self.costs = Some(Arc::new(model));
        self
    }

    /// Sets the worker-pool width. `1` reproduces the historical serial
    /// behaviour exactly (inline execution, no pool).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables per-cell progress lines on stderr (shorthand for
    /// [`Self::progress_config`] with
    /// [`ProgressConfig::per_cell`] / [`ProgressConfig::off`]).
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = if on {
            ProgressConfig::per_cell()
        } else {
            ProgressConfig::off()
        };
        self
    }

    /// Sets the full progress-reporting configuration (mode + emission
    /// interval) — what `sweep --progress[=SECS]` / `--progress-json`
    /// drive.
    pub fn progress_config(mut self, cfg: ProgressConfig) -> Self {
        self.progress = cfg;
        self
    }

    /// Injects the clock used for all campaign telemetry (phase timers,
    /// per-cell `wall_ns`, progress rate-limiting). Defaults to the real
    /// [`MonotonicClock`]; tests inject a
    /// [`MockClock`](crate::telemetry::MockClock) for deterministic
    /// timing.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Sets the trace-sourcing policy (default:
    /// [`TracePolicy::Memoize`] — freeze each workload's stream once and
    /// replay it for every cell).
    pub fn traces(mut self, policy: TracePolicy) -> Self {
        self.traces = policy;
        self
    }

    /// Enables/disables trace-shared batched execution (default: on).
    ///
    /// When on and a trace store is configured, cells replaying the same
    /// frozen artifact are grouped and their simulations interleaved over
    /// one streaming pass of the shared bytes (see
    /// [`crate::scheduler::plan_batches`]). Purely a locality/throughput
    /// strategy: results, journals, and shard outputs are bit-identical
    /// either way (pinned by `batched_execution_is_bit_identical`).
    /// Ignored under [`TracePolicy::Generate`], which has no shared
    /// artifacts to batch over.
    pub fn batch(mut self, on: bool) -> Self {
        self.batch = on;
        self
    }

    /// Checkpoints completed cells to an append-only JSONL journal at
    /// `path`. Without [`Self::resume`], the file is truncated and
    /// started fresh; with it, previously completed cells are restored
    /// and skipped.
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Resumes from the configured [`Self::journal`] (no-op without
    /// one): completed cells recorded there are restored instead of
    /// re-simulated, after verifying the journal belongs to this exact
    /// plan. A missing journal file simply starts fresh.
    pub fn resume(mut self, on: bool) -> Self {
        self.resume = on;
        self
    }

    /// Excludes (quarantines) specific cells from **execution**: a cell
    /// whose [`CellKey`] is listed is never simulated, though one
    /// already completed in a resume journal is still restored. This is
    /// the orchestrator's quarantine hand-off (`sweep --skip-cells`): a
    /// worker relaunched after repeated crashes on one cell skips it and
    /// completes the rest of its shard, degrading gracefully instead of
    /// crash-looping. The resulting [`ShardOutput`] simply lacks the
    /// excluded cells, which the supervisor accounts for in its
    /// partial-result manifest.
    pub fn exclude(mut self, keys: impl IntoIterator<Item = CellKey>) -> Self {
        self.excluded.extend(keys);
        self
    }

    /// The simulation configuration cells run under.
    pub fn cfg(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs every cell of `grid`; no baselines, `speedup` is `None`.
    pub fn run(&self, grid: &ScenarioGrid) -> CampaignResult {
        self.execute(grid, false)
    }

    /// Runs every cell of `grid` and computes each cell's speedup over
    /// the NoCache baseline. Baselines are memoized: exactly one NoCache
    /// simulation per `(workload, system spec, seed)` in the whole
    /// campaign, prefilled in parallel before the design cells run.
    pub fn run_speedups(&self, grid: &ScenarioGrid) -> CampaignResult {
        self.execute(grid, true)
    }

    /// Runs one deterministic shard of `grid` (no baselines); see
    /// [`Self::run_shard_speedups`].
    pub fn run_shard(&self, grid: &ScenarioGrid, shard: ShardSpec) -> ShardOutput {
        self.run_plan(grid, false, &ShardedExecutor::new(shard))
    }

    /// Runs one deterministic shard of `grid` with speedups: only the
    /// cells whose [`CellKey`](crate::CellKey) lands in `shard` under
    /// the N-way partition execute (with exactly the baselines and trace
    /// freezes they need). The returned [`ShardOutput`] serializes to
    /// JSON; [`merge_shards`](crate::merge_shards) combines a complete
    /// set of them into a [`CampaignResult`] bit-identical to
    /// [`Self::run_speedups`] on one machine.
    pub fn run_shard_speedups(&self, grid: &ScenarioGrid, shard: ShardSpec) -> ShardOutput {
        self.run_plan(grid, true, &ShardedExecutor::new(shard))
    }

    /// Builds the shared trace store for this campaign's policy.
    fn trace_store(&self) -> Option<Arc<TraceStore>> {
        match &self.traces {
            TracePolicy::Generate => None,
            TracePolicy::Memoize => Some(Arc::new(TraceStore::new())),
            TracePolicy::Disk(dir) => Some(Arc::new(TraceStore::new().with_dir(dir))),
        }
    }

    /// Generic order-preserving parallel map on this campaign's pool —
    /// for experiments whose cells are not plain
    /// (design, size, workload) simulations (custom policies, shadow
    /// predictors).
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        parallel_map(items, self.threads, f)
    }

    fn execute(&self, grid: &ScenarioGrid, speedups: bool) -> CampaignResult {
        self.run_plan(grid, speedups, &InProcessExecutor)
            .into_campaign_result()
            .expect("the in-process executor covers every planned cell")
    }

    /// Opens (or resumes) the configured journal for `plan`, returning
    /// the journal handle and the completed cells it already records.
    ///
    /// # Panics
    ///
    /// Panics when the journal cannot be created, or when resuming a
    /// journal that belongs to a different campaign — silently mixing
    /// results from two plans must never happen.
    fn open_journal(&self, plan: &TaskPlan) -> (Option<Journal>, Vec<IndexedCell>) {
        match &self.journal {
            None => (None, Vec::new()),
            Some(path) if self.resume => match Journal::resume(path, plan) {
                Ok((j, entries)) => (Some(j), entries),
                Err(e) => panic!("cannot resume campaign: {e}"),
            },
            Some(path) => match Journal::create(path, plan) {
                Ok(j) => (Some(j), Vec::new()),
                Err(e) => panic!("cannot create campaign journal at {}: {e}", path.display()),
            },
        }
    }

    /// Lowers `grid` to a [`TaskPlan`] and runs it through `executor`:
    /// the generic entry point behind [`Self::run`],
    /// [`Self::run_speedups`], and [`Self::run_shard_speedups`], public
    /// for custom executors. Only the executor's assigned cells run
    /// (minus any restored from a resume journal), with exactly the
    /// trace freezes and baselines those cells depend on — and they
    /// simulate bit-identically to the same cells inside a full
    /// single-process run.
    pub fn run_plan(
        &self,
        grid: &ScenarioGrid,
        speedups: bool,
        executor: &dyn Executor,
    ) -> ShardOutput {
        let plan = TaskPlan::lower(&self.cfg, grid, speedups);
        let assigned = executor.assigned(&plan);
        let assigned_set: HashSet<usize> = assigned.iter().copied().collect();

        let telemetry = Telemetry::new(Arc::clone(&self.clock));
        let (journal, mut restored) = self.open_journal(&plan);
        restored.retain(|e| assigned_set.contains(&e.index));
        restored.sort_by_key(|e| e.index);
        if self.progress.banners() && !restored.is_empty() {
            eprintln!(
                "[harness] restored {} completed cell(s) from journal {}",
                restored.len(),
                journal
                    .as_ref()
                    .map(|j| j.path().display().to_string())
                    .unwrap_or_default()
            );
        }
        let mut skip: HashSet<usize> = restored.iter().map(|e| e.index).collect();
        if !self.excluded.is_empty() {
            // Quarantined cells: never execute (restored ones above are
            // kept — a journaled completion is a completion).
            skip.extend(
                plan.cells
                    .iter()
                    .filter(|pc| self.excluded.contains(&pc.key))
                    .map(|pc| pc.index),
            );
        }
        let to_run: Vec<usize> = assigned
            .iter()
            .copied()
            .filter(|i| !skip.contains(i))
            .collect();

        // Dependency stages: freeze exactly the trace artifacts and
        // simulate exactly the baselines the cells about to run need.
        let traces = self.trace_store();
        if let Some(traces) = &traces {
            let mut needed: Vec<usize> = to_run.iter().map(|&i| plan.cells[i].prefill).collect();
            needed.sort_unstable();
            needed.dedup();
            let tasks: Vec<TracePrefillTask> = needed
                .into_iter()
                .map(|i| plan.prefills[i].clone())
                .collect();
            if self.progress.banners() && !tasks.is_empty() {
                eprintln!(
                    "[harness] freezing {} trace artifact(s) on {} thread(s)",
                    tasks.len(),
                    self.threads
                );
            }
            telemetry.time_phase(Phase::TracePrefill, || {
                traces.prefill(&tasks, self.threads);
            });
        }
        let store = speedups.then(|| {
            let mut store = BaselineStore::new(self.cfg);
            if let Some(traces) = &traces {
                store = store.with_traces(Arc::clone(traces));
            }
            store
        });
        if let Some(store) = &store {
            let mut needed: Vec<usize> = to_run
                .iter()
                .filter_map(|&i| plan.cells[i].baseline)
                .collect();
            needed.sort_unstable();
            needed.dedup();
            let tasks: Vec<&BaselineTask> = needed.iter().map(|&i| &plan.baselines[i]).collect();
            if self.progress.banners() && !tasks.is_empty() {
                eprintln!(
                    "[harness] prefilling {} baseline(s) on {} thread(s)",
                    tasks.len(),
                    self.threads
                );
            }
            telemetry.time_phase(Phase::Baseline, || {
                pool::parallel_map_observed(
                    &tasks,
                    self.threads,
                    |t| {
                        store.get_for_system(&t.workload, &t.system, t.seed);
                    },
                    &|t| format!("NoCache baseline for {} (seed {})", t.workload.name, t.seed),
                    &mut |_, ()| {},
                );
            });
        }

        // Live-progress snapshots of the dependency-cache counters.
        let counters = || CounterSnapshot {
            baseline_runs: store.as_ref().map_or(0, BaselineStore::computed_runs),
            baseline_hits: store.as_ref().map_or(0, BaselineStore::cache_hits),
            trace_generated: traces.as_ref().map_or(0, |t| t.generated_traces()),
            trace_memo_hits: traces.as_ref().map_or(0, |t| t.memo_hits()),
            trace_disk_hits: traces.as_ref().map_or(0, |t| t.disk_hits()),
        };
        // Predicted per-plan-index costs, present when a model is
        // loaded: drives LPT ordering in the executor and cost-weighted
        // ETAs in the reporter.
        let plan_costs: Option<Vec<u64>> = self
            .costs
            .as_ref()
            .map(|m| m.plan_costs(&plan, self.cfg.accesses));
        let mut reporter = ProgressReporter::new(
            self.progress,
            self.threads,
            to_run.len(),
            restored.len(),
            telemetry.now_ns(),
        );
        if let Some(costs) = &plan_costs {
            reporter = reporter.with_predicted_work(
                to_run
                    .iter()
                    .map(|&i| costs[i])
                    .fold(0u64, u64::saturating_add),
            );
        }
        let run_batch = |cells: &[&PlannedCell]| {
            self.run_cell_batch(
                cells,
                store.as_ref(),
                traces
                    .as_deref()
                    .expect("batching is only installed with a trace store"),
                &telemetry,
            )
        };
        let executed = telemetry.time_phase(Phase::Cells, || {
            executor.execute(
                &plan,
                ExecHooks {
                    threads: self.threads,
                    skip: &skip,
                    run: &|pc| {
                        fault::check_cell_start(&pc.key.hex());
                        // Stamped on the worker thread: wall time of this
                        // cell's simulation alone, excluding queueing.
                        let start = telemetry.now_ns();
                        let mut r = self.run_cell(&pc.cell, store.as_ref(), traces.as_deref());
                        r.wall_ns = telemetry.now_ns().saturating_sub(start);
                        r
                    },
                    run_batch: (self.batch && traces.is_some())
                        .then_some(&run_batch as &crate::scheduler::BatchRunner),
                    cost: plan_costs.as_deref(),
                    observe: &mut |pc, r| {
                        if let Some(j) = &journal {
                            j.append(&IndexedCell {
                                index: pc.index,
                                key: pc.key.hex(),
                                result: r.clone(),
                            });
                        }
                        if let Some(line) = reporter.on_cell(
                            telemetry.now_ns(),
                            r.design(),
                            &pc.cell.describe(),
                            r.wall_ns,
                            plan_costs.as_ref().map_or(0, |c| c[pc.index]),
                            counters(),
                        ) {
                            eprintln!("{line}");
                        }
                        // After the journal append: the cells counted as
                        // completed really are durable when this fires.
                        fault::cell_completed(&pc.key.hex());
                    },
                },
            )
        });

        let resumed_cells = restored.len();
        let mut cells = restored;
        cells.extend(executed.into_iter().map(|(i, r)| IndexedCell {
            index: i,
            key: plan.cells[i].key.hex(),
            result: r,
        }));
        cells.sort_by_key(|e| e.index);
        let (shard_index, shard_count) = executor.shard();
        ShardOutput {
            fingerprint: plan.fingerprint().to_string(),
            total_cells: plan.len(),
            shard_index,
            shard_count,
            speedups,
            cells,
            baseline_runs: store.as_ref().map_or(0, BaselineStore::computed_runs),
            baseline_hits: store.as_ref().map_or(0, BaselineStore::cache_hits),
            trace_generated: traces.as_ref().map_or(0, |t| t.generated_traces()),
            trace_memo_hits: traces.as_ref().map_or(0, |t| t.memo_hits()),
            trace_disk_hits: traces.as_ref().map_or(0, |t| t.disk_hits()),
            resumed_cells,
            timing: telemetry.timing(),
        }
    }

    fn run_cell(
        &self,
        cell: &Cell,
        store: Option<&BaselineStore>,
        traces: Option<&TraceStore>,
    ) -> CellResult {
        let mut cfg = self.cfg;
        cfg.seed = cell.seed;
        cfg.system = cell.scenario.system;
        let tag = |speedup: Option<f64>, run: RunResult| CellResult {
            scenario: cell.scenario.name.clone(),
            system: cell.scenario.system,
            cores: cell.scenario.system.resolved_cores(&cell.workload),
            seed: cell.seed,
            speedup,
            run,
            // Stamped by run_plan's run hook; stays 0 for cells built
            // outside a plan (tests, NoCache baseline reuse).
            wall_ns: 0,
        };
        // The shared artifact for this cell's (workload, system, seed),
        // when trace sharing is on. Held across the run; clones of the
        // Arc are O(1) and the payload is never copied.
        let artifact = traces.map(|t| {
            let plan = cfg.trace_plan(&cell.workload, cell.cache_bytes);
            t.get(&plan.scaled_spec, cell.seed, plan.frozen_len)
        });
        let source = artifact
            .as_ref()
            .map_or(TraceSource::Live, |a| TraceSource::Replay(a));
        match store {
            Some(store) => {
                let base = store.get_for_system(&cell.workload, &cell.scenario.system, cell.seed);
                if cell.design == Design::NoCache {
                    // The baseline *is* this cell's run; reuse it. Key the
                    // result by the cell's declared size so grid-coordinate
                    // lookups stay uniform.
                    let mut run = base;
                    run.cache_bytes = cell.cache_bytes;
                    tag(Some(1.0), run)
                } else {
                    let s = run_speedup_with_baseline_source(
                        cell.design,
                        cell.cache_bytes,
                        &cell.workload,
                        &cfg,
                        &base,
                        source,
                    );
                    tag(Some(s.speedup), s.run)
                }
            }
            None => tag(
                None,
                run_experiment_with_source(
                    cell.design,
                    cell.cache_bytes,
                    &cell.workload,
                    &cfg,
                    source,
                ),
            ),
        }
    }

    /// Runs one trace-sharing batch: every cell's [`CellSim`] is stepped
    /// round-robin in [`Self::BATCH_STEP_RECORDS`]-record slices, so the
    /// batch makes one streaming pass over the shared artifact bytes with
    /// all cells' replay cursors inside the same hot region — instead of
    /// each cell streaming the whole artifact through the cache alone.
    ///
    /// Bit-identity with per-cell execution holds by construction
    /// (stepping a `CellSim` is bit-identical to the one-shot runner, and
    /// cells share no mutable state) and is pinned by
    /// `batched_execution_is_bit_identical`. Per-cell `wall_ns` is
    /// accumulated across this cell's own setup and step slices, so the
    /// telemetry still reports per-cell simulation cost.
    fn run_cell_batch(
        &self,
        cells: &[&PlannedCell],
        store: Option<&BaselineStore>,
        traces: &TraceStore,
        telemetry: &Telemetry,
    ) -> Vec<CellResult> {
        let tag = |pc: &PlannedCell, speedup: Option<f64>, run: RunResult, wall_ns: u64| {
            let cell = &pc.cell;
            CellResult {
                scenario: cell.scenario.name.clone(),
                system: cell.scenario.system,
                cores: cell.scenario.system.resolved_cores(&cell.workload),
                seed: cell.seed,
                speedup,
                run,
                wall_ns,
            }
        };

        let mut results: Vec<Option<CellResult>> = (0..cells.len()).map(|_| None).collect();

        // Setup pass: per-cell config, memoized baseline, and the shared
        // artifact handle. NoCache speedup cells finish right here
        // (baseline reuse — no simulation, exactly as `run_cell`).
        struct Pending {
            pos: usize,
            cfg: SimConfig,
            base_uipc: Option<f64>,
            artifact: Arc<TraceArtifact>,
            wall_ns: u64,
        }
        let mut pending: Vec<Pending> = Vec::new();
        for (pos, pc) in cells.iter().enumerate() {
            let cell = &pc.cell;
            fault::check_cell_start(&pc.key.hex());
            let start = telemetry.now_ns();
            let mut cfg = self.cfg;
            cfg.seed = cell.seed;
            cfg.system = cell.scenario.system;
            let base =
                store.map(|s| s.get_for_system(&cell.workload, &cell.scenario.system, cell.seed));
            if let (Some(base), Design::NoCache) = (&base, cell.design) {
                let mut run = base.clone();
                run.cache_bytes = cell.cache_bytes;
                let wall_ns = telemetry.now_ns().saturating_sub(start);
                results[pos] = Some(tag(pc, Some(1.0), run, wall_ns));
                continue;
            }
            if let Some(base) = &base {
                check_baseline(base);
            }
            let plan = cfg.trace_plan(&cell.workload, cell.cache_bytes);
            let artifact = traces.get(&plan.scaled_spec, cell.seed, plan.frozen_len);
            pending.push(Pending {
                pos,
                cfg,
                base_uipc: base.map(|b| b.uipc),
                artifact,
                wall_ns: telemetry.now_ns().saturating_sub(start),
            });
        }

        // Simulation pass: step every live cell round-robin until all
        // are done. Each tuple carries (cell position, sim, baseline
        // UIPC, accumulated wall time).
        let mut sims: Vec<(usize, CellSim<'_>, Option<f64>, u64)> = pending
            .iter()
            .map(|p| {
                let cell = &cells[p.pos].cell;
                let sim = CellSim::new(
                    cell.design,
                    cell.cache_bytes,
                    &cell.workload,
                    &p.cfg,
                    &p.artifact,
                );
                (p.pos, sim, p.base_uipc, p.wall_ns)
            })
            .collect();
        loop {
            let mut live = false;
            for (_, sim, _, wall_ns) in &mut sims {
                if sim.is_done() {
                    continue;
                }
                let start = telemetry.now_ns();
                sim.step(Self::BATCH_STEP_RECORDS);
                *wall_ns += telemetry.now_ns().saturating_sub(start);
                live = true;
            }
            if !live {
                break;
            }
        }
        for (pos, sim, base_uipc, wall_ns) in sims {
            let run = sim.into_result();
            let speedup = base_uipc.map(|b| run.uipc / b);
            results[pos] = Some(tag(cells[pos], speedup, run, wall_ns));
        }
        results
            .into_iter()
            .map(|r| r.expect("every batched cell produced a result"))
            .collect()
    }

    /// Records each cell consumes per round-robin turn in a batch: large
    /// enough that dispatch-loop state stays warm within a turn, small
    /// enough (≈ 1 MiB of encoded trace) that all cursors in a batch stay
    /// within the same recently-touched region of the shared artifact.
    const BATCH_STEP_RECORDS: u64 = 65_536;
}

#[cfg(test)]
mod tests {
    use super::*;
    use unison_trace::workloads;

    fn tiny_grid() -> ScenarioGrid {
        ScenarioGrid::new()
            .designs([Design::Unison, Design::Ideal])
            .workloads([workloads::web_search(), workloads::data_serving()])
            .sizes([256 << 20])
    }

    #[test]
    fn plain_run_has_no_speedups() {
        let r = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .run(&tiny_grid());
        assert_eq!(r.cells.len(), 4);
        assert!(r.cells.iter().all(|c| c.speedup.is_none()));
        assert_eq!(r.baseline_runs, 0);
    }

    #[test]
    fn speedup_run_memoizes_baselines() {
        let r = Campaign::new(SimConfig::quick_test())
            .threads(2)
            .run_speedups(&tiny_grid());
        assert_eq!(r.cells.len(), 4);
        assert!(r.cells.iter().all(|c| c.speedup.is_some()));
        // Two workloads, one seed: exactly two baseline simulations.
        assert_eq!(r.baseline_runs, 2);
        assert!(r.baseline_hits >= 4, "every cell reuses its baseline");
    }

    #[test]
    fn lookup_helpers_find_cells() {
        let r = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .run_speedups(&tiny_grid());
        let c = r
            .get("Web Search", "Unison", 256 << 20)
            .expect("cell exists");
        assert_eq!(c.workload(), "Web Search");
        assert!(c.speedup.unwrap() > 0.0);
        assert_eq!(r.speedups("Ideal", 256 << 20).len(), 2);
        assert!(r.geomean_speedup("Ideal", 256 << 20).unwrap() > 1.0);
        assert!(r.get("Web Search", "Alloy", 256 << 20).is_none());
    }

    #[test]
    fn trace_memoization_is_bit_identical_to_regeneration() {
        let grid = tiny_grid();
        let generated = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .traces(TracePolicy::Generate)
            .run_speedups(&grid);
        let memoized = Campaign::new(SimConfig::quick_test())
            .threads(2)
            .traces(TracePolicy::Memoize)
            .run_speedups(&grid);
        assert_eq!(
            serde_json::to_string(&generated.canonical_cells()).unwrap(),
            serde_json::to_string(&memoized.canonical_cells()).unwrap(),
            "replayed campaign diverged from regenerating campaign"
        );
        assert_eq!(generated.trace_generated, 0);
        // Two (workload, seed) streams, frozen exactly once each.
        assert_eq!(memoized.trace_generated, 2);
        assert!(
            memoized.trace_memo_hits >= 4,
            "every cell and baseline replays the shared artifact, got {}",
            memoized.trace_memo_hits
        );
    }

    #[test]
    fn disk_policy_survives_campaign_invocations() {
        let dir = std::env::temp_dir().join(format!(
            "unison-campaign-trace-cache-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let grid = ScenarioGrid::new()
            .designs([Design::Ideal])
            .workloads([workloads::web_search()])
            .sizes([256 << 20]);

        let first = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .traces(TracePolicy::Disk(dir.clone()))
            .run_speedups(&grid);
        assert_eq!(first.trace_generated, 1);
        assert_eq!(first.trace_disk_hits, 0);

        let second = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .traces(TracePolicy::Disk(dir.clone()))
            .run_speedups(&grid);
        assert_eq!(
            second.trace_generated, 0,
            "second invocation loads from disk"
        );
        assert_eq!(second.trace_disk_hits, 1);
        assert_eq!(
            serde_json::to_string(&first.canonical_cells()).unwrap(),
            serde_json::to_string(&second.canonical_cells()).unwrap()
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Trace-shared batched execution is a throughput strategy, not a
    /// semantic one: toggling it (and the pool width under it) must not
    /// change a single canonical byte of the campaign output.
    #[test]
    fn batched_execution_is_bit_identical() {
        let grid = ScenarioGrid::new()
            .designs([
                Design::Unison,
                Design::Alloy,
                Design::Ideal,
                Design::NoCache,
            ])
            .workloads([workloads::web_search(), workloads::data_serving()])
            .sizes([256 << 20]);
        let unbatched = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .batch(false)
            .run_speedups(&grid);
        let batched = Campaign::new(SimConfig::quick_test())
            .threads(3)
            .batch(true)
            .run_speedups(&grid);
        assert_eq!(
            serde_json::to_string(&unbatched.canonical_cells()).unwrap(),
            serde_json::to_string(&batched.canonical_cells()).unwrap(),
            "batched campaign diverged from per-cell execution"
        );
        // Batched cells still carry their own simulation wall time.
        // (NoCache cells reuse the baseline; their near-instant fetch
        // may round to 0 ns, so only simulated cells are asserted.)
        assert!(batched
            .cells
            .iter()
            .filter(|c| c.design() != "NoCache")
            .all(|c| c.wall_ns > 0));
    }

    /// LPT scheduling under a cost model reorders execution only:
    /// canonical output is byte-identical to a model-free serial run,
    /// for both the batched and per-cell paths.
    #[test]
    fn lpt_scheduling_is_bit_identical() {
        let grid = ScenarioGrid::new()
            .designs([Design::Unison, Design::Alloy, Design::Ideal])
            .workloads([workloads::web_search(), workloads::data_serving()])
            .sizes([128 << 20, 256 << 20]);
        let plain = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .run_speedups(&grid);
        // A learned model with deliberately inverted costs (cheap
        // designs predicted expensive) maximally perturbs the order.
        let mut model = crate::costs::CostModel::new();
        for cell in grid.cells(SimConfig::quick_test().seed) {
            let ns = match cell.design {
                Design::Ideal => 9_000_000,
                _ => 1_000_000,
            };
            model.record(
                &cell.design.name(),
                cell.workload.name,
                &cell.scenario.name,
                cell.cache_bytes,
                ns,
            );
        }
        for batch in [false, true] {
            let lpt = Campaign::new(SimConfig::quick_test())
                .threads(2)
                .batch(batch)
                .costs(model.clone())
                .run_speedups(&grid);
            assert_eq!(
                serde_json::to_string(&plain.canonical_cells()).unwrap(),
                serde_json::to_string(&lpt.canonical_cells()).unwrap(),
                "LPT (batch={batch}) diverged from the serial run"
            );
        }
    }

    /// Plain (no-speedup) campaigns batch too — including `NoCache`
    /// cells, which have no baseline to reuse and simulate like any
    /// other design.
    #[test]
    fn batched_plain_campaign_is_bit_identical() {
        let grid = ScenarioGrid::new()
            .designs([Design::Ideal, Design::NoCache])
            .workloads([workloads::web_search()])
            .sizes([256 << 20]);
        let unbatched = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .batch(false)
            .run(&grid);
        let batched = Campaign::new(SimConfig::quick_test())
            .threads(2)
            .batch(true)
            .run(&grid);
        assert_eq!(
            serde_json::to_string(&unbatched.canonical_cells()).unwrap(),
            serde_json::to_string(&batched.canonical_cells()).unwrap(),
        );
    }

    #[test]
    fn executed_cells_are_stamped_with_wall_time_from_the_injected_clock() {
        use std::sync::atomic::{AtomicU64, Ordering};

        /// Deterministic test clock: every reading advances 1 µs, so any
        /// (start, end) pair differs by a positive, repeatable amount.
        #[derive(Debug, Default)]
        struct TickClock(AtomicU64);
        impl Clock for TickClock {
            fn now_ns(&self) -> u64 {
                self.0.fetch_add(1_000, Ordering::Relaxed)
            }
        }

        let r = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .clock(Arc::new(TickClock::default()))
            .run_speedups(&tiny_grid());
        assert!(
            r.cells.iter().all(|c| c.wall_ns > 0),
            "every executed cell must carry a positive wall time"
        );
        assert!(r.timing.cells_ns > 0, "cells phase must be timed");
        assert!(r.timing.baseline_ns > 0, "baseline phase must be timed");
        assert_eq!(
            r.timing.total_ns,
            r.timing.trace_prefill_ns + r.timing.baseline_ns + r.timing.cells_ns
        );
        // Canonicalization strips all of it.
        assert!(r.canonical_cells().iter().all(|c| c.wall_ns == 0));
    }

    #[test]
    fn nocache_cells_reuse_the_baseline() {
        let grid = ScenarioGrid::new()
            .designs([Design::NoCache, Design::Ideal])
            .workloads([workloads::web_search()])
            .sizes([256 << 20]);
        let r = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .run_speedups(&grid);
        assert_eq!(r.baseline_runs, 1, "NoCache cell must not re-simulate");
        let nc = r
            .get("Web Search", "NoCache", 256 << 20)
            .expect("baseline cell");
        assert_eq!(nc.speedup, Some(1.0));
    }

    #[test]
    fn scenario_axis_runs_distinct_machines_with_distinct_baselines() {
        use unison_sim::{Scenario, SystemSpec};
        let quad = Scenario::from_spec(SystemSpec {
            cores: Some(4),
            ..SystemSpec::default()
        });
        let grid = ScenarioGrid::new()
            .designs([Design::Unison])
            .workloads([workloads::web_search()])
            .sizes([256 << 20])
            .scenarios([Scenario::default(), quad]);
        let r = Campaign::new(SimConfig::quick_test())
            .threads(2)
            .run_speedups(&grid);
        assert_eq!(r.cells.len(), 2);
        assert_eq!(
            r.baseline_runs, 2,
            "each machine gets its own NoCache baseline"
        );
        // Different core counts generate different traces, so the two
        // cells must also freeze two distinct artifacts.
        assert_eq!(r.trace_generated, 2, "per-machine trace artifacts");
        let default = r
            .get_in_scenario("default", "Web Search", "Unison", 256 << 20, 42)
            .expect("default cell");
        let quad = r
            .get_in_scenario("c4", "Web Search", "Unison", 256 << 20, 42)
            .expect("c4 cell");
        assert_eq!(default.cores, 16);
        assert_eq!(quad.cores, 4);
        assert_ne!(
            default.run.uipc, quad.run.uipc,
            "core count must change the measured result"
        );
        // The scenario helpers slice per machine.
        assert_eq!(r.speedups_in_scenario("c4", "Unison", 256 << 20).len(), 1);
        assert!(r
            .geomean_speedup_in_scenario("default", "Unison", 256 << 20)
            .is_some());
    }

    #[test]
    fn scenarios_sharing_a_machine_share_baseline_and_trace() {
        use unison_sim::{Scenario, SystemSpec};
        // Same system spec under two names: one baseline, one artifact.
        let a = Scenario {
            name: "alpha".into(),
            system: SystemSpec::default(),
        };
        let b = Scenario {
            name: "beta".into(),
            system: SystemSpec::default(),
        };
        let grid = ScenarioGrid::new()
            .designs([Design::Ideal])
            .workloads([workloads::web_search()])
            .sizes([256 << 20])
            .scenarios([a, b]);
        let r = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .run_speedups(&grid);
        assert_eq!(r.baseline_runs, 1, "identical machines share a baseline");
        assert_eq!(r.trace_generated, 1, "identical machines share a trace");
        assert_eq!(
            serde_json::to_string(&r.cells[0].run).unwrap(),
            serde_json::to_string(&r.cells[1].run).unwrap(),
            "same machine, same workload, same seed => same result"
        );
    }
}
