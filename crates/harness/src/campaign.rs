//! Campaign execution: grid → worker pool → typed results.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use serde::Serialize;
use unison_sim::{
    run_experiment_with_source, run_speedup_with_baseline_source, Design, RunResult, SimConfig,
    SystemSpec, TraceSource,
};
use unison_trace::WorkloadSpec;

use crate::baseline::BaselineStore;
use crate::grid::{Cell, ScenarioGrid};
use crate::pool::{self, parallel_map};
use crate::stats::geomean;
use crate::trace_store::TraceStore;

/// One executed cell: the simulation outcome plus the scenario and seed
/// it ran under and (for speedup campaigns) its speedup over the memoized
/// NoCache baseline.
#[derive(Debug, Clone, Serialize)]
pub struct CellResult {
    /// Scenario display name.
    pub scenario: String,
    /// The machine the cell simulated (full spec, self-describing in
    /// JSON output).
    pub system: SystemSpec,
    /// Core count the run actually drove (the spec's override, or the
    /// workload's own pod size).
    pub cores: u32,
    /// Trace seed the cell ran with.
    pub seed: u64,
    /// Speedup over the NoCache baseline (`None` for plain campaigns).
    pub speedup: Option<f64>,
    /// The full simulation result.
    pub run: RunResult,
}

impl CellResult {
    /// Design display name.
    pub fn design(&self) -> &str {
        &self.run.design
    }

    /// Workload display name.
    pub fn workload(&self) -> &str {
        &self.run.workload
    }

    /// Nominal cache size in bytes.
    pub fn cache_bytes(&self) -> u64 {
        self.run.cache_bytes
    }
}

/// All results of one campaign, in grid order.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignResult {
    /// Executed cells, ordered exactly as [`ScenarioGrid::cells`]
    /// enumerated them (independent of worker scheduling).
    pub cells: Vec<CellResult>,
    /// NoCache baseline simulations actually executed.
    pub baseline_runs: usize,
    /// Baseline requests served from the memo cache.
    pub baseline_hits: usize,
    /// Trace artifacts generated (0 when trace sharing is disabled or
    /// everything came from the disk cache).
    pub trace_generated: usize,
    /// Trace requests served from the in-memory artifact memo.
    pub trace_memo_hits: usize,
    /// Trace requests served from the on-disk artifact cache.
    pub trace_disk_hits: usize,
}

impl CampaignResult {
    /// The executed cells in grid order.
    pub fn cells(&self) -> &[CellResult] {
        &self.cells
    }

    /// First cell matching `(workload, design name, cache size)`.
    pub fn get(&self, workload: &str, design: &str, cache_bytes: u64) -> Option<&CellResult> {
        self.cells.iter().find(|c| {
            c.workload() == workload && c.design() == design && c.cache_bytes() == cache_bytes
        })
    }

    /// Cell matching `(workload, design name, cache size, seed)`.
    pub fn get_seeded(
        &self,
        workload: &str,
        design: &str,
        cache_bytes: u64,
        seed: u64,
    ) -> Option<&CellResult> {
        self.cells.iter().find(|c| {
            c.workload() == workload
                && c.design() == design
                && c.cache_bytes() == cache_bytes
                && c.seed == seed
        })
    }

    /// Speedups of every cell matching `(design name, cache size)`, in
    /// grid (workload) order.
    pub fn speedups(&self, design: &str, cache_bytes: u64) -> Vec<f64> {
        self.cells
            .iter()
            .filter(|c| c.design() == design && c.cache_bytes() == cache_bytes)
            .filter_map(|c| c.speedup)
            .collect()
    }

    /// Geometric-mean speedup across workloads for `(design, size)` —
    /// the summary bar of Figures 7 and 8.
    pub fn geomean_speedup(&self, design: &str, cache_bytes: u64) -> Option<f64> {
        geomean(&self.speedups(design, cache_bytes))
    }

    /// Cell matching `(scenario name, workload, design, size, seed)` —
    /// the fully qualified lookup for multi-scenario sweeps.
    pub fn get_in_scenario(
        &self,
        scenario: &str,
        workload: &str,
        design: &str,
        cache_bytes: u64,
        seed: u64,
    ) -> Option<&CellResult> {
        self.cells.iter().find(|c| {
            c.scenario == scenario
                && c.workload() == workload
                && c.design() == design
                && c.cache_bytes() == cache_bytes
                && c.seed == seed
        })
    }

    /// Speedups of every cell matching `(scenario, design, size)`, in
    /// grid (workload) order.
    pub fn speedups_in_scenario(&self, scenario: &str, design: &str, cache_bytes: u64) -> Vec<f64> {
        self.cells
            .iter()
            .filter(|c| {
                c.scenario == scenario && c.design() == design && c.cache_bytes() == cache_bytes
            })
            .filter_map(|c| c.speedup)
            .collect()
    }

    /// Geometric-mean speedup across workloads for
    /// `(scenario, design, size)`.
    pub fn geomean_speedup_in_scenario(
        &self,
        scenario: &str,
        design: &str,
        cache_bytes: u64,
    ) -> Option<f64> {
        geomean(&self.speedups_in_scenario(scenario, design, cache_bytes))
    }
}

/// How a campaign sources its trace record streams.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TracePolicy {
    /// Regenerate the stream per cell with `WorkloadGen` (the historical
    /// behaviour; no artifact memory footprint).
    Generate,
    /// Freeze each `(workload, seed)` stream once per campaign and
    /// replay it from a shared in-memory artifact (bit-identical to
    /// generation; the default).
    #[default]
    Memoize,
    /// [`TracePolicy::Memoize`] plus an on-disk artifact cache, so
    /// repeated campaign invocations skip generation entirely.
    Disk(PathBuf),
}

/// Executes [`ScenarioGrid`]s on a worker pool under one [`SimConfig`]
/// (whose system spec each cell's scenario overrides).
#[derive(Debug, Clone)]
pub struct Campaign {
    cfg: SimConfig,
    threads: usize,
    progress: bool,
    traces: TracePolicy,
}

impl Campaign {
    /// Creates a campaign running under `cfg` with one worker per
    /// available hardware thread.
    pub fn new(cfg: SimConfig) -> Self {
        Campaign {
            cfg,
            threads: pool::default_threads(),
            progress: false,
            traces: TracePolicy::default(),
        }
    }

    /// Sets the worker-pool width. `1` reproduces the historical serial
    /// behaviour exactly (inline execution, no pool).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables per-cell progress lines on stderr.
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Sets the trace-sourcing policy (default:
    /// [`TracePolicy::Memoize`] — freeze each workload's stream once and
    /// replay it for every cell).
    pub fn traces(mut self, policy: TracePolicy) -> Self {
        self.traces = policy;
        self
    }

    /// The simulation configuration cells run under.
    pub fn cfg(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs every cell of `grid`; no baselines, `speedup` is `None`.
    pub fn run(&self, grid: &ScenarioGrid) -> CampaignResult {
        self.execute(grid, false)
    }

    /// Runs every cell of `grid` and computes each cell's speedup over
    /// the NoCache baseline. Baselines are memoized: exactly one NoCache
    /// simulation per `(workload, system spec, seed)` in the whole
    /// campaign, prefilled in parallel before the design cells run.
    pub fn run_speedups(&self, grid: &ScenarioGrid) -> CampaignResult {
        self.execute(grid, true)
    }

    /// Builds the shared trace store for this campaign's policy.
    fn trace_store(&self) -> Option<Arc<TraceStore>> {
        match &self.traces {
            TracePolicy::Generate => None,
            TracePolicy::Memoize => Some(Arc::new(TraceStore::new())),
            TracePolicy::Disk(dir) => Some(Arc::new(TraceStore::new().with_dir(dir))),
        }
    }

    /// Freezes every `(workload, seed)` artifact the grid will replay, in
    /// parallel, each at the **maximum** length any of its cells (and the
    /// baseline, when speedups run) requires — so the per-key grow-on-
    /// demand path never regenerates mid-campaign.
    fn prefill_traces(&self, traces: &TraceStore, cells: &[Cell], with_baselines: bool) {
        let mut plans: HashMap<(String, u64), (WorkloadSpec, u64)> = HashMap::new();
        for cell in cells {
            // The scenario's system spec feeds the plan, so its core
            // count lands in the scaled spec — the artifact key. Cells of
            // scenarios that share an effective workload share a freeze.
            let mut cfg = self.cfg;
            cfg.system = cell.scenario.system;
            let plan = cfg.trace_plan(&cell.workload, cell.cache_bytes);
            let needed = if with_baselines {
                // The baseline runs at cache size 0; its trace is never
                // longer than a design cell's, but take the max anyway
                // rather than encode that reasoning here.
                plan.frozen_len
                    .max(cfg.trace_plan(&cell.workload, 0).frozen_len)
            } else {
                plan.frozen_len
            };
            let json = serde_json::to_string(&plan.scaled_spec).expect("workload spec serializes");
            let entry = plans
                .entry((json, cell.seed))
                .or_insert_with(|| (plan.scaled_spec.clone(), 0));
            entry.1 = entry.1.max(needed);
        }
        let work: Vec<(WorkloadSpec, u64, u64)> = plans
            .into_iter()
            .map(|((_, seed), (spec, len))| (spec, seed, len))
            .collect();
        if self.progress {
            eprintln!(
                "[harness] freezing {} trace artifact(s) on {} thread(s)",
                work.len(),
                self.threads
            );
        }
        parallel_map(&work, self.threads, |(spec, seed, len)| {
            traces.get(spec, *seed, *len);
        });
    }

    /// Generic order-preserving parallel map on this campaign's pool —
    /// for experiments whose cells are not plain
    /// (design, size, workload) simulations (custom policies, shadow
    /// predictors).
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        parallel_map(items, self.threads, f)
    }

    fn execute(&self, grid: &ScenarioGrid, speedups: bool) -> CampaignResult {
        let cells = grid.cells(self.cfg.seed);
        let traces = self.trace_store();
        if let Some(traces) = &traces {
            self.prefill_traces(traces, &cells, speedups);
        }
        let store = speedups.then(|| {
            let mut store = BaselineStore::new(self.cfg);
            if let Some(traces) = &traces {
                store = store.with_traces(Arc::clone(traces));
            }
            store
        });
        if let Some(store) = &store {
            let keys = grid.baseline_keys(self.cfg.seed);
            if self.progress {
                eprintln!(
                    "[harness] prefilling {} baseline(s) on {} thread(s)",
                    keys.len(),
                    self.threads
                );
            }
            parallel_map(&keys, self.threads, |(spec, system, seed)| {
                store.get_for_system(spec, system, *seed);
            });
        }

        let total = cells.len();
        let done = AtomicUsize::new(0);
        let results = parallel_map(&cells, self.threads, |cell| {
            let r = self.run_cell(cell, store.as_ref(), traces.as_deref());
            if self.progress {
                let k = done.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!(
                    "[harness {k}/{total}] {} @ {}MB on {} [{}] (seed {}) done",
                    cell.design.name(),
                    cell.cache_bytes >> 20,
                    cell.workload.name,
                    cell.scenario.name,
                    cell.seed
                );
            }
            r
        });
        CampaignResult {
            cells: results,
            baseline_runs: store.as_ref().map_or(0, BaselineStore::computed_runs),
            baseline_hits: store.as_ref().map_or(0, BaselineStore::cache_hits),
            trace_generated: traces.as_ref().map_or(0, |t| t.generated_traces()),
            trace_memo_hits: traces.as_ref().map_or(0, |t| t.memo_hits()),
            trace_disk_hits: traces.as_ref().map_or(0, |t| t.disk_hits()),
        }
    }

    fn run_cell(
        &self,
        cell: &Cell,
        store: Option<&BaselineStore>,
        traces: Option<&TraceStore>,
    ) -> CellResult {
        let mut cfg = self.cfg;
        cfg.seed = cell.seed;
        cfg.system = cell.scenario.system;
        let tag = |speedup: Option<f64>, run: RunResult| CellResult {
            scenario: cell.scenario.name.clone(),
            system: cell.scenario.system,
            cores: cell.scenario.system.resolved_cores(&cell.workload),
            seed: cell.seed,
            speedup,
            run,
        };
        // The shared artifact for this cell's (workload, system, seed),
        // when trace sharing is on. Held across the run; clones of the
        // Arc are O(1) and the payload is never copied.
        let artifact = traces.map(|t| {
            let plan = cfg.trace_plan(&cell.workload, cell.cache_bytes);
            t.get(&plan.scaled_spec, cell.seed, plan.frozen_len)
        });
        let source = artifact
            .as_ref()
            .map_or(TraceSource::Live, |a| TraceSource::Replay(a));
        match store {
            Some(store) => {
                let base = store.get_for_system(&cell.workload, &cell.scenario.system, cell.seed);
                if cell.design == Design::NoCache {
                    // The baseline *is* this cell's run; reuse it. Key the
                    // result by the cell's declared size so grid-coordinate
                    // lookups stay uniform.
                    let mut run = base;
                    run.cache_bytes = cell.cache_bytes;
                    tag(Some(1.0), run)
                } else {
                    let s = run_speedup_with_baseline_source(
                        cell.design,
                        cell.cache_bytes,
                        &cell.workload,
                        &cfg,
                        &base,
                        source,
                    );
                    tag(Some(s.speedup), s.run)
                }
            }
            None => tag(
                None,
                run_experiment_with_source(
                    cell.design,
                    cell.cache_bytes,
                    &cell.workload,
                    &cfg,
                    source,
                ),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unison_trace::workloads;

    fn tiny_grid() -> ScenarioGrid {
        ScenarioGrid::new()
            .designs([Design::Unison, Design::Ideal])
            .workloads([workloads::web_search(), workloads::data_serving()])
            .sizes([256 << 20])
    }

    #[test]
    fn plain_run_has_no_speedups() {
        let r = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .run(&tiny_grid());
        assert_eq!(r.cells.len(), 4);
        assert!(r.cells.iter().all(|c| c.speedup.is_none()));
        assert_eq!(r.baseline_runs, 0);
    }

    #[test]
    fn speedup_run_memoizes_baselines() {
        let r = Campaign::new(SimConfig::quick_test())
            .threads(2)
            .run_speedups(&tiny_grid());
        assert_eq!(r.cells.len(), 4);
        assert!(r.cells.iter().all(|c| c.speedup.is_some()));
        // Two workloads, one seed: exactly two baseline simulations.
        assert_eq!(r.baseline_runs, 2);
        assert!(r.baseline_hits >= 4, "every cell reuses its baseline");
    }

    #[test]
    fn lookup_helpers_find_cells() {
        let r = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .run_speedups(&tiny_grid());
        let c = r
            .get("Web Search", "Unison", 256 << 20)
            .expect("cell exists");
        assert_eq!(c.workload(), "Web Search");
        assert!(c.speedup.unwrap() > 0.0);
        assert_eq!(r.speedups("Ideal", 256 << 20).len(), 2);
        assert!(r.geomean_speedup("Ideal", 256 << 20).unwrap() > 1.0);
        assert!(r.get("Web Search", "Alloy", 256 << 20).is_none());
    }

    #[test]
    fn trace_memoization_is_bit_identical_to_regeneration() {
        let grid = tiny_grid();
        let generated = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .traces(TracePolicy::Generate)
            .run_speedups(&grid);
        let memoized = Campaign::new(SimConfig::quick_test())
            .threads(2)
            .traces(TracePolicy::Memoize)
            .run_speedups(&grid);
        assert_eq!(
            serde_json::to_string(&generated.cells).unwrap(),
            serde_json::to_string(&memoized.cells).unwrap(),
            "replayed campaign diverged from regenerating campaign"
        );
        assert_eq!(generated.trace_generated, 0);
        // Two (workload, seed) streams, frozen exactly once each.
        assert_eq!(memoized.trace_generated, 2);
        assert!(
            memoized.trace_memo_hits >= 4,
            "every cell and baseline replays the shared artifact, got {}",
            memoized.trace_memo_hits
        );
    }

    #[test]
    fn disk_policy_survives_campaign_invocations() {
        let dir = std::env::temp_dir().join(format!(
            "unison-campaign-trace-cache-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let grid = ScenarioGrid::new()
            .designs([Design::Ideal])
            .workloads([workloads::web_search()])
            .sizes([256 << 20]);

        let first = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .traces(TracePolicy::Disk(dir.clone()))
            .run_speedups(&grid);
        assert_eq!(first.trace_generated, 1);
        assert_eq!(first.trace_disk_hits, 0);

        let second = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .traces(TracePolicy::Disk(dir.clone()))
            .run_speedups(&grid);
        assert_eq!(
            second.trace_generated, 0,
            "second invocation loads from disk"
        );
        assert_eq!(second.trace_disk_hits, 1);
        assert_eq!(
            serde_json::to_string(&first.cells).unwrap(),
            serde_json::to_string(&second.cells).unwrap()
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nocache_cells_reuse_the_baseline() {
        let grid = ScenarioGrid::new()
            .designs([Design::NoCache, Design::Ideal])
            .workloads([workloads::web_search()])
            .sizes([256 << 20]);
        let r = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .run_speedups(&grid);
        assert_eq!(r.baseline_runs, 1, "NoCache cell must not re-simulate");
        let nc = r
            .get("Web Search", "NoCache", 256 << 20)
            .expect("baseline cell");
        assert_eq!(nc.speedup, Some(1.0));
    }

    #[test]
    fn scenario_axis_runs_distinct_machines_with_distinct_baselines() {
        use unison_sim::{Scenario, SystemSpec};
        let quad = Scenario::from_spec(SystemSpec {
            cores: Some(4),
            ..SystemSpec::default()
        });
        let grid = ScenarioGrid::new()
            .designs([Design::Unison])
            .workloads([workloads::web_search()])
            .sizes([256 << 20])
            .scenarios([Scenario::default(), quad]);
        let r = Campaign::new(SimConfig::quick_test())
            .threads(2)
            .run_speedups(&grid);
        assert_eq!(r.cells.len(), 2);
        assert_eq!(
            r.baseline_runs, 2,
            "each machine gets its own NoCache baseline"
        );
        // Different core counts generate different traces, so the two
        // cells must also freeze two distinct artifacts.
        assert_eq!(r.trace_generated, 2, "per-machine trace artifacts");
        let default = r
            .get_in_scenario("default", "Web Search", "Unison", 256 << 20, 42)
            .expect("default cell");
        let quad = r
            .get_in_scenario("c4", "Web Search", "Unison", 256 << 20, 42)
            .expect("c4 cell");
        assert_eq!(default.cores, 16);
        assert_eq!(quad.cores, 4);
        assert_ne!(
            default.run.uipc, quad.run.uipc,
            "core count must change the measured result"
        );
        // The scenario helpers slice per machine.
        assert_eq!(r.speedups_in_scenario("c4", "Unison", 256 << 20).len(), 1);
        assert!(r
            .geomean_speedup_in_scenario("default", "Unison", 256 << 20)
            .is_some());
    }

    #[test]
    fn scenarios_sharing_a_machine_share_baseline_and_trace() {
        use unison_sim::{Scenario, SystemSpec};
        // Same system spec under two names: one baseline, one artifact.
        let a = Scenario {
            name: "alpha".into(),
            system: SystemSpec::default(),
        };
        let b = Scenario {
            name: "beta".into(),
            system: SystemSpec::default(),
        };
        let grid = ScenarioGrid::new()
            .designs([Design::Ideal])
            .workloads([workloads::web_search()])
            .sizes([256 << 20])
            .scenarios([a, b]);
        let r = Campaign::new(SimConfig::quick_test())
            .threads(1)
            .run_speedups(&grid);
        assert_eq!(r.baseline_runs, 1, "identical machines share a baseline");
        assert_eq!(r.trace_generated, 1, "identical machines share a trace");
        assert_eq!(
            serde_json::to_string(&r.cells[0].run).unwrap(),
            serde_json::to_string(&r.cells[1].run).unwrap(),
            "same machine, same workload, same seed => same result"
        );
    }
}
